//! Command-line scenario construction.
//!
//! Powers the `strings-sim` binary: a tiny, dependency-free argument
//! grammar that builds a [`Scenario`] so users can explore the scheduler
//! without writing Rust.
//!
//! ```text
//! strings-sim --mode strings --lb gwtmin --gpu-policy ps \
//!             --app MC:20:1.5 --app DC:10:1.0:1 --nodes 2 --seed 7
//! ```

use crate::scenario::{LbScope, Scenario, StreamSpec};
use crate::serve::ServeSpec;
use remoting::gpool::NodeId;
use remoting::topology::TopologySpec;
use sim_core::fault::FaultPlan;
use sim_core::SimDuration;
use strings_core::admission::{RateLimit, SloAdmission};
use strings_core::config::StackConfig;
use strings_core::device_sched::{GpuPolicy, TenantId};
use strings_core::mapper::LbPolicy;
use strings_core::placement::NodePolicy;
use strings_metrics::alerts::BurnRateConfig;
use strings_workloads::arrivals::ArrivalProcess;
use strings_workloads::profile::AppKind;

/// A parse failure with a user-facing message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliError(pub String);

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

fn err<T>(msg: impl Into<String>) -> Result<T, CliError> {
    Err(CliError(msg.into()))
}

/// Parse an application kind mnemonic (Table I two-letter code).
pub fn parse_app(s: &str) -> Result<AppKind, CliError> {
    AppKind::ALL
        .into_iter()
        .find(|k| k.short().eq_ignore_ascii_case(s))
        .ok_or_else(|| {
            CliError(format!(
                "unknown app '{s}' (expected one of DC SC BO MM HI EV BS MC GA SN)"
            ))
        })
}

/// Parse a balancing policy name.
pub fn parse_lb(s: &str) -> Result<LbPolicy, CliError> {
    match s.to_ascii_lowercase().as_str() {
        "grr" => Ok(LbPolicy::Grr),
        "gmin" => Ok(LbPolicy::GMin),
        "gwtmin" => Ok(LbPolicy::GWtMin),
        "frag" => Ok(LbPolicy::Frag),
        "rtf" => Ok(LbPolicy::Rtf),
        "guf" => Ok(LbPolicy::Guf),
        "dtf" => Ok(LbPolicy::Dtf),
        "mbf" => Ok(LbPolicy::Mbf),
        other => err(format!("unknown balancing policy '{other}'")),
    }
}

/// Parse a device-level policy name.
pub fn parse_gpu_policy(s: &str) -> Result<GpuPolicy, CliError> {
    match s.to_ascii_lowercase().as_str() {
        "none" => Ok(GpuPolicy::None),
        "tfs" => Ok(GpuPolicy::Tfs),
        "las" => Ok(GpuPolicy::Las),
        "ps" => Ok(GpuPolicy::Ps),
        other => err(format!("unknown GPU policy '{other}'")),
    }
}

/// Parse one `--app KIND:COUNT:LOAD[:NODE]` stream spec. The tenant id is
/// assigned by position.
pub fn parse_stream(s: &str, tenant: u32) -> Result<StreamSpec, CliError> {
    let parts: Vec<&str> = s.split(':').collect();
    if !(3..=4).contains(&parts.len()) {
        return err(format!("--app wants KIND:COUNT:LOAD[:NODE], got '{s}'"));
    }
    let app = parse_app(parts[0])?;
    let count: usize = parts[1]
        .parse()
        .map_err(|_| CliError(format!("bad count '{}'", parts[1])))?;
    let load: f64 = parts[2]
        .parse()
        .map_err(|_| CliError(format!("bad load '{}'", parts[2])))?;
    if load <= 0.0 {
        return err("load must be positive");
    }
    let node: u32 = match parts.get(3) {
        Some(n) => n.parse().map_err(|_| CliError(format!("bad node '{n}'")))?,
        None => 0,
    };
    Ok(StreamSpec {
        app,
        node: NodeId(node),
        tenant: TenantId(tenant),
        weight: 1.0,
        count,
        load,
        server_threads: 6,
    })
}

/// Parsed command line.
#[derive(Debug)]
pub struct CliRun {
    /// The scenario to execute.
    pub scenario: Scenario,
    /// Seeds to average over.
    pub seeds: Vec<u64>,
    /// Write a trace of the representative run to this path (Chrome
    /// trace-event JSON; `.jsonl` extension selects the JSONL form).
    pub trace: Option<String>,
}

/// Usage text for `--help`.
pub const USAGE: &str = "strings-sim — run the Strings GPU scheduler simulator

options:
  --mode cuda|rain|strings        scheduling stack        [strings]
  --lb   grr|gmin|gwtmin|frag|rtf|guf|dtf|mbf   balancer   [gwtmin]
  --gpu-policy none|tfs|las|ps    device dispatcher        [none]
  --feedback POLICY:MIN           arbiter switch after MIN records
  --app KIND:COUNT:LOAD[:NODE]    request stream (repeatable) [MC:10:1.5]
  --nodes 1|2                     NodeA or NodeA+NodeB     [1]
  --topology SPEC                 cluster shape (overrides --nodes):
                                  node-a|single, supernode|paper, or
                                  NxM[:MODEL][@NET], e.g. 64x4:c2050
                                  NET: calibrated|gbe|ideal|LAT_US:BW_MBPS
  --scope global|local            balancer scope           [global]
  --vmem                          enable device virtual memory
  --seed N                        base RNG seed            [42]
  --seeds N                       average over N seeds     [1]
  --trace PATH                    write a Perfetto-loadable trace of the
                                  run (.jsonl extension selects JSONL)

subcommands:
  serve                           open-loop cloud serving (see
                                  `strings-sim serve --help`)
  explain REQ [serve options]     blame chain for one request of a serve
                                  run (see `strings-sim explain --help`)
  policy-matrix                   rank placement x mapper x admission
                                  policy stacks across workload mixes and
                                  fault plans (`--quick` for the CI scale)
";

/// Usage text for `strings-sim serve --help`.
pub const SERVE_USAGE: &str = "strings-sim serve — open-loop cloud serving with SLO reporting

Requests arrive at a configured rate for a configured duration regardless
of completions; an admission front door sheds what the supernode cannot
absorb, and the run is summarized by an SLO report (latency percentiles,
goodput, shed rate, windowed per-tenant fairness).

options:
  --arrivals SPEC       offered load            [poisson:3rps]
                          poisson:RATErps               seeded Poisson
                          fixed:RATErps                 deterministic
                          mmpp:BURSTrps:BASErps:DW:DW   bursty two-state
                          replay:PATH                   JSONL trace
  --duration DUR        arrival window, e.g. 600s [30s]
  --tenants N           tenant count             [4]
  --apps K1,K2,...      app mix (tenant t serves apps[t % len]) [GA]
  --queue-depth N       per-tenant in-system bound before shedding [8]
  --rate-limit RPS[:BURST]   per-tenant token-bucket admission limit
  --slo-target DUR      shed while a tenant's smoothed queue wait exceeds
                        this target (e.g. 50ms); off by default
  --window DUR          sliding fairness window  [1s]
  --server-threads N    per-tenant in-flight cap past admission [8]
  --mode cuda|rain|strings        scheduling stack        [strings]
  --lb   grr|gmin|gwtmin|frag|rtf|guf|dtf|mbf   balancer   [gwtmin]
  --gpu-policy none|tfs|las|ps    device dispatcher        [none]
  --nodes 1|2           NodeA or NodeA+NodeB     [2]
  --topology SPEC       cluster shape (overrides --nodes): node-a|single,
                        supernode|paper, or NxM[:MODEL][@NET], e.g.
                        64x4:c2050@calibrated — N nodes of M GPUs
  --placement rr|hash|least   tenant → node placement policy   [rr]
  --node-metrics        add per-node rollup families to sampled metrics
  --threads N           sweep worker threads for multi-seed runs
  --scope global|local  balancer scope           [global]
  --seed N              base RNG seed            [42]
  --seeds N             rerun over N seeds       [1]
  --trace PATH          write a Perfetto-loadable trace of the run
  --attribution         print the per-request latency attribution report
                        (stage breakdown: admission/host/rpc/engine waits
                        and service; exactly additive per request)
  --metrics-every DUR   sample the unified metrics registry on this
                        virtual-time cadence (e.g. 1s)      [1s]
  --metrics-out PATH    write sampled metrics; `.jsonl` extension selects
                        the JSONL time series, anything else the
                        OpenMetrics text exposition (implies sampling)
  --faults SPEC         inject faults; `;`-separated entries of
                        crash@TIME:gidN, ecc@TIME:gidN, nodeloss@TIME:nodeN,
                        degrade@TIME+DUR:nodeNxF, partition@TIME+DUR:nodeN
  --burn-alert DUR[:BUDGET]  SLO burn-rate rule: completions slower than
                        DUR are \"bad\"; BUDGET is the bad fraction budget
                        (default 0.01). FIRED transitions dump the flight
                        recorder and are listed per seed.
  --alert-windows S:L   burn-rate windows (virtual time)  [300s:3600s]
  --alert-factor F      burn factor both windows must exceed [2]
  --flight-depth N      flight-recorder ring depth per node (0 disables
                        the always-on recorder)             [256]
  --dump PATH           write the first flight-recorder dump window;
                        `.jsonl` extension selects JSONL, anything else
                        Chrome trace-event JSON. Without a trigger the
                        end-of-run window is written.
  --dump-at DUR         force an explicit dump trigger at this virtual
                        time (requires --dump)
";

/// Usage text for `strings-sim explain --help`.
pub const EXPLAIN_USAGE: &str = "strings-sim explain — blame chain for one request of a serve run

  strings-sim explain REQ [serve options]

Reruns the serve scenario described by the options (same grammar as
`strings-sim serve`; the run is deterministic in --seed) with request
REQ's flight-record chain captured in full, then prints the blame chain —
arrival, admission, dispatch, device bind, every RPC hop, faults,
failovers, completion — with causal links into the DES event chain, plus
the attribution profiler's per-stage charges, which sum exactly to the
request's end-to-end latency.
";

/// Parsed `serve` command line.
#[derive(Debug)]
pub struct ServeRun {
    /// The serving scenario to execute.
    pub spec: ServeSpec,
    /// Seeds to run (reports are per-seed, not averaged).
    pub seeds: Vec<u64>,
    /// Write a trace of the representative run to this path.
    pub trace: Option<String>,
    /// Print the latency-attribution report.
    pub attribution: bool,
    /// Write sampled metrics to this path (`.jsonl` = JSONL time series,
    /// otherwise OpenMetrics text).
    pub metrics_out: Option<String>,
    /// Pin the sweep worker-thread count for multi-seed runs.
    pub threads: Option<usize>,
    /// Write the first flight-recorder dump window to this path
    /// (`.jsonl` = JSONL, otherwise Chrome trace-event JSON).
    pub dump: Option<String>,
}

/// Parse a `serve` argument list (everything after the `serve` word).
pub fn parse_serve_args(args: &[String]) -> Result<ServeRun, CliError> {
    let mut arrivals = "poisson:3rps".to_string();
    let mut duration = SimDuration::from_secs(30);
    let mut tenants = 4usize;
    let mut apps: Vec<AppKind> = vec![AppKind::GA];
    let mut queue_depth = 8usize;
    let mut rate_limit: Option<RateLimit> = None;
    let mut slo_target: Option<SimDuration> = None;
    let mut window = SimDuration::from_secs(1);
    let mut server_threads = 8usize;
    let mut mode = "strings".to_string();
    let mut lb = "gwtmin".to_string();
    let mut gpu = "none".to_string();
    let mut nodes = 2usize;
    let mut topology: Option<TopologySpec> = None;
    let mut placement = NodePolicy::RoundRobin;
    let mut node_metrics = false;
    let mut threads: Option<usize> = None;
    let mut scope = LbScope::Global;
    let mut seed = 42u64;
    let mut n_seeds = 1u64;
    let mut trace: Option<String> = None;
    let mut attribution = false;
    let mut metrics_every: Option<SimDuration> = None;
    let mut metrics_out: Option<String> = None;
    let mut faults = FaultPlan::none();
    let mut burn_alert: Option<(SimDuration, f64)> = None;
    let mut alert_windows: Option<(SimDuration, SimDuration)> = None;
    let mut alert_factor: Option<f64> = None;
    let mut flight_depth: Option<usize> = None;
    let mut dump: Option<String> = None;
    let mut dump_at: Option<SimDuration> = None;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut take = || -> Result<&String, CliError> {
            it.next()
                .ok_or_else(|| CliError(format!("{arg} wants a value")))
        };
        match arg.as_str() {
            "--arrivals" => arrivals = take()?.clone(),
            "--attribution" => attribution = true,
            "--metrics-every" => {
                metrics_every = Some(SimDuration::parse(take()?).map_err(CliError)?)
            }
            "--metrics-out" => metrics_out = Some(take()?.clone()),
            "--duration" => duration = SimDuration::parse(take()?).map_err(CliError)?,
            "--tenants" => {
                tenants = take()?
                    .parse()
                    .map_err(|_| CliError("bad --tenants".into()))?;
                if tenants == 0 {
                    return err("--tenants must be at least 1");
                }
            }
            "--apps" => {
                apps = take()?
                    .split(',')
                    .map(parse_app)
                    .collect::<Result<Vec<_>, _>>()?;
                if apps.is_empty() {
                    return err("--apps wants at least one app");
                }
            }
            "--queue-depth" => {
                queue_depth = take()?
                    .parse()
                    .map_err(|_| CliError("bad --queue-depth".into()))?;
                if queue_depth == 0 {
                    return err("--queue-depth must be at least 1");
                }
            }
            "--rate-limit" => rate_limit = Some(RateLimit::parse(take()?).map_err(CliError)?),
            "--slo-target" => {
                let d = SimDuration::parse(take()?).map_err(CliError)?;
                if d.is_zero() {
                    return err("--slo-target must be positive");
                }
                slo_target = Some(d);
            }
            "--window" => window = SimDuration::parse(take()?).map_err(CliError)?,
            "--server-threads" => {
                server_threads = take()?
                    .parse()
                    .map_err(|_| CliError("bad --server-threads".into()))?;
                if server_threads == 0 {
                    return err("--server-threads must be at least 1");
                }
            }
            "--mode" => mode = take()?.clone(),
            "--lb" => lb = take()?.clone(),
            "--gpu-policy" => gpu = take()?.clone(),
            "--nodes" => {
                nodes = take()?
                    .parse()
                    .map_err(|_| CliError("bad --nodes".into()))?;
                if !(1..=2).contains(&nodes) {
                    return err("--nodes must be 1 or 2");
                }
            }
            "--topology" => topology = Some(TopologySpec::parse(take()?).map_err(CliError)?),
            "--placement" => placement = NodePolicy::parse(take()?).map_err(CliError)?,
            "--node-metrics" => node_metrics = true,
            "--threads" => {
                let n: usize = take()?
                    .parse()
                    .map_err(|_| CliError("bad --threads".into()))?;
                if n == 0 {
                    return err("--threads must be at least 1");
                }
                threads = Some(n);
            }
            "--scope" => {
                scope = match take()?.as_str() {
                    "global" => LbScope::Global,
                    "local" => LbScope::Local,
                    other => return err(format!("unknown scope '{other}'")),
                };
            }
            "--seed" => {
                seed = take()?.parse().map_err(|_| CliError("bad --seed".into()))?;
            }
            "--seeds" => {
                n_seeds = take()?
                    .parse()
                    .map_err(|_| CliError("bad --seeds".into()))?;
                if n_seeds == 0 {
                    return err("--seeds must be at least 1");
                }
            }
            "--trace" => trace = Some(take()?.clone()),
            "--faults" => faults = FaultPlan::parse(take()?).map_err(CliError)?,
            "--burn-alert" => {
                let v = take()?;
                let (target_spec, budget_spec) = match v.split_once(':') {
                    Some((t, b)) => (t, Some(b)),
                    None => (v.as_str(), None),
                };
                let target = SimDuration::parse(target_spec).map_err(CliError)?;
                if target.is_zero() {
                    return err("--burn-alert target must be positive");
                }
                let budget = match budget_spec {
                    Some(b) => b
                        .parse::<f64>()
                        .ok()
                        .filter(|b| *b > 0.0 && *b <= 1.0)
                        .ok_or_else(|| {
                            CliError(format!("bad budget '{b}' (want a fraction in (0, 1])"))
                        })?,
                    None => 0.01,
                };
                burn_alert = Some((target, budget));
            }
            "--alert-windows" => {
                let v = take()?;
                let (s, l) = v
                    .split_once(':')
                    .ok_or_else(|| CliError("--alert-windows wants SHORT:LONG".into()))?;
                let short = SimDuration::parse(s).map_err(CliError)?;
                let long = SimDuration::parse(l).map_err(CliError)?;
                if short.is_zero() || long < short {
                    return err("--alert-windows wants 0 < SHORT <= LONG");
                }
                alert_windows = Some((short, long));
            }
            "--alert-factor" => {
                let f: f64 = take()?
                    .parse()
                    .map_err(|_| CliError("bad --alert-factor".into()))?;
                if f <= 0.0 {
                    return err("--alert-factor must be positive");
                }
                alert_factor = Some(f);
            }
            "--flight-depth" => {
                flight_depth = Some(
                    take()?
                        .parse()
                        .map_err(|_| CliError("bad --flight-depth".into()))?,
                );
            }
            "--dump" => dump = Some(take()?.clone()),
            "--dump-at" => {
                let d = SimDuration::parse(take()?).map_err(CliError)?;
                if d.is_zero() {
                    return err("--dump-at must be positive");
                }
                dump_at = Some(d);
            }
            other => return err(format!("unknown option '{other}'\n\n{SERVE_USAGE}")),
        }
    }
    if duration.is_zero() {
        return err("--duration must be positive");
    }
    if burn_alert.is_none() && (alert_windows.is_some() || alert_factor.is_some()) {
        return err("--alert-windows/--alert-factor need --burn-alert");
    }
    if dump_at.is_some() && dump.is_none() {
        return err("--dump-at needs --dump PATH");
    }

    let mut stack = match mode.as_str() {
        "cuda" => StackConfig::cuda_runtime(),
        "rain" => StackConfig::rain(parse_lb(&lb)?),
        "strings" => StackConfig::strings(parse_lb(&lb)?),
        other => return err(format!("unknown mode '{other}'")),
    };
    stack = stack.with_gpu_policy(parse_gpu_policy(&gpu)?);

    let process = ArrivalProcess::parse(&arrivals).map_err(CliError)?;
    // --topology wins over the --nodes 1|2 sugar when both are given.
    let topo = topology.unwrap_or_else(|| {
        if nodes == 2 {
            TopologySpec::supernode()
        } else {
            TopologySpec::node_a()
        }
    });
    let mut spec = ServeSpec::on(topo, stack, process, duration, seed);
    spec.placement = placement;
    spec.node_metrics = node_metrics;
    spec.scope = scope;
    spec.tenants = tenants;
    spec.apps = apps;
    spec.admission.queue_depth = queue_depth;
    spec.admission.rate_limit = rate_limit;
    spec.admission.slo = slo_target.map(|d| SloAdmission {
        target_wait_ns: d.as_ns(),
    });
    spec.window = window;
    spec.server_threads = server_threads;
    spec.faults = faults;
    spec.trace = trace.is_some();
    spec.attribution = attribution;
    spec.flight_depth = flight_depth;
    if let Some((target, budget)) = burn_alert {
        let mut cfg = BurnRateConfig::new(target);
        cfg.budget = budget;
        if let Some((short, long)) = alert_windows {
            cfg.short_ns = short.as_ns();
            cfg.long_ns = long.as_ns();
        }
        if let Some(f) = alert_factor {
            cfg.factor = f;
        }
        spec.burn_alert = Some(cfg);
    }
    spec.dump_at = dump_at;
    spec.dump_final = dump.is_some();
    if metrics_every.is_some_and(|d| d.is_zero()) {
        return err("--metrics-every must be positive");
    }
    // A metrics output path implies sampling at the default cadence.
    if metrics_out.is_some() && metrics_every.is_none() {
        metrics_every = Some(SimDuration::from_secs(1));
    }
    spec.metrics_every = metrics_every;
    let seeds: Vec<u64> = (0..n_seeds).map(|i| seed + i * 7919).collect();
    Ok(ServeRun {
        spec,
        seeds,
        trace,
        attribution,
        metrics_out,
        threads,
        dump,
    })
}

/// Parse an `explain` argument list: `REQ [serve options]`. The serve
/// spec reruns with attribution forced on and request `REQ`'s flight
/// chain captured in full.
pub fn parse_explain_args(args: &[String]) -> Result<(u64, ServeRun), CliError> {
    let Some((req_arg, rest)) = args.split_first() else {
        return err(format!("explain wants a request id\n\n{EXPLAIN_USAGE}"));
    };
    let req: u64 = req_arg
        .parse()
        .map_err(|_| CliError(format!("bad request id '{req_arg}'\n\n{EXPLAIN_USAGE}")))?;
    let mut run = parse_serve_args(rest)?;
    // The blame chain needs stage charges; attribution is a superset of
    // nothing and byte-invisible to the SLO surfaces, so force it on.
    run.spec.attribution = true;
    run.attribution = false;
    run.spec.explain = Some(req);
    Ok((req, run))
}

/// Parse a full argument list (excluding `argv[0]`).
pub fn parse_args(args: &[String]) -> Result<CliRun, CliError> {
    let mut mode = "strings".to_string();
    let mut lb = "gwtmin".to_string();
    let mut gpu = "none".to_string();
    let mut feedback: Option<(LbPolicy, u64)> = None;
    let mut streams: Vec<StreamSpec> = Vec::new();
    let mut nodes = 1usize;
    let mut topology: Option<TopologySpec> = None;
    let mut scope = LbScope::Global;
    let mut vmem = false;
    let mut seed = 42u64;
    let mut n_seeds = 1u64;
    let mut trace: Option<String> = None;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut take = || -> Result<&String, CliError> {
            it.next()
                .ok_or_else(|| CliError(format!("{arg} wants a value")))
        };
        match arg.as_str() {
            "--mode" => mode = take()?.clone(),
            "--lb" => lb = take()?.clone(),
            "--gpu-policy" => gpu = take()?.clone(),
            "--feedback" => {
                let v = take()?;
                let (p, m) = v
                    .split_once(':')
                    .ok_or_else(|| CliError("--feedback wants POLICY:MIN".into()))?;
                let policy = parse_lb(p)?;
                if !policy.is_feedback() {
                    return err(format!("'{p}' is not a feedback policy"));
                }
                let min: u64 = m
                    .parse()
                    .map_err(|_| CliError(format!("bad feedback threshold '{m}'")))?;
                feedback = Some((policy, min));
            }
            "--app" => {
                let spec = take()?.clone();
                let tenant = streams.len() as u32;
                streams.push(parse_stream(&spec, tenant)?);
            }
            "--nodes" => {
                nodes = take()?
                    .parse()
                    .map_err(|_| CliError("bad --nodes".into()))?;
                if !(1..=2).contains(&nodes) {
                    return err("--nodes must be 1 or 2");
                }
            }
            "--topology" => topology = Some(TopologySpec::parse(take()?).map_err(CliError)?),
            "--scope" => {
                scope = match take()?.as_str() {
                    "global" => LbScope::Global,
                    "local" => LbScope::Local,
                    other => return err(format!("unknown scope '{other}'")),
                };
            }
            "--vmem" => vmem = true,
            "--seed" => {
                seed = take()?.parse().map_err(|_| CliError("bad --seed".into()))?;
            }
            "--seeds" => {
                n_seeds = take()?
                    .parse()
                    .map_err(|_| CliError("bad --seeds".into()))?;
                if n_seeds == 0 {
                    return err("--seeds must be at least 1");
                }
            }
            "--trace" => trace = Some(take()?.clone()),
            other => return err(format!("unknown option '{other}'\n\n{USAGE}")),
        }
    }
    if streams.is_empty() {
        streams.push(parse_stream("MC:10:1.5", 0)?);
    }
    // --topology wins over the --nodes 1|2 sugar when both are given.
    let topo = topology.unwrap_or_else(|| {
        if nodes == 2 {
            TopologySpec::supernode()
        } else {
            TopologySpec::node_a()
        }
    });
    let n_nodes = topo.num_nodes();
    for s in &streams {
        if s.node.0 as usize >= n_nodes {
            return err(format!(
                "stream targets node {} but only {n_nodes} node(s) configured",
                s.node.0
            ));
        }
    }

    let mut stack = match mode.as_str() {
        "cuda" => StackConfig::cuda_runtime(),
        "rain" => StackConfig::rain(parse_lb(&lb)?),
        "strings" => StackConfig::strings(parse_lb(&lb)?),
        other => return err(format!("unknown mode '{other}'")),
    };
    stack = stack.with_gpu_policy(parse_gpu_policy(&gpu)?);
    if let Some((p, m)) = feedback {
        if mode == "cuda" {
            return err("--feedback needs an interposed mode (rain/strings)");
        }
        stack = stack.with_feedback(p, m);
    }

    let mut scenario = Scenario::on(topo, stack, streams, seed).with_scope(scope);
    scenario.device_cfg.vmem = vmem;
    scenario.trace = trace.is_some();
    let seeds: Vec<u64> = (0..n_seeds).map(|i| seed + i * 7919).collect();
    Ok(CliRun {
        scenario,
        seeds,
        trace,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn defaults_build_a_valid_run() {
        let run = parse_args(&[]).unwrap();
        assert_eq!(run.scenario.streams.len(), 1);
        assert_eq!(run.scenario.streams[0].app, AppKind::MC);
        assert_eq!(run.seeds, vec![42]);
        assert_eq!(run.scenario.topology.num_nodes(), 1);
    }

    #[test]
    fn full_argument_set_parses() {
        let run = parse_args(&args(
            "--mode strings --lb gwtmin --gpu-policy ps --feedback mbf:6 \
             --app DC:10:1.0 --app MC:20:1.5:1 --nodes 2 --scope global \
             --vmem --seed 9 --seeds 3",
        ))
        .unwrap();
        assert_eq!(run.scenario.streams.len(), 2);
        assert_eq!(run.scenario.streams[1].node, NodeId(1));
        assert_eq!(run.scenario.streams[1].tenant, TenantId(1));
        assert!(run.scenario.device_cfg.vmem);
        assert_eq!(run.seeds.len(), 3);
        assert_eq!(run.scenario.stack.label(), "MBFPS-Strings");
    }

    #[test]
    fn stream_spec_grammar() {
        let s = parse_stream("hi:5:2.5", 3).unwrap();
        assert_eq!(s.app, AppKind::HI);
        assert_eq!(s.count, 5);
        assert_eq!(s.tenant, TenantId(3));
        assert_eq!(s.node, NodeId(0));
        assert!(parse_stream("HI:5", 0).is_err());
        assert!(parse_stream("HI:x:1.0", 0).is_err());
        assert!(parse_stream("HI:5:-1.0", 0).is_err());
        assert!(parse_stream("ZZ:5:1.0", 0).is_err());
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse_args(&args("--mode quantum")).is_err());
        assert!(parse_args(&args("--lb fastest")).is_err());
        assert!(parse_args(&args("--nodes 3")).is_err());
        assert!(parse_args(&args("--seeds 0")).is_err());
        assert!(parse_args(&args("--frobnicate")).is_err());
        // Feedback target must be a feedback policy; cuda can't feedback.
        assert!(parse_args(&args("--feedback gmin:3")).is_err());
        assert!(parse_args(&args("--mode cuda --feedback mbf:3")).is_err());
        // Stream on an unconfigured node.
        assert!(parse_args(&args("--app MC:5:1.0:1")).is_err());
    }

    #[test]
    fn parsed_scenario_actually_runs() {
        let run = parse_args(&args("--app GA:3:1.0 --gpu-policy tfs")).unwrap();
        let stats = run.scenario.run();
        assert_eq!(stats.completed_requests, 3);
        assert!(stats.trace.is_none(), "tracing must default off");
    }

    #[test]
    fn serve_defaults_build_a_valid_run() {
        let run = parse_serve_args(&[]).unwrap();
        assert_eq!(run.spec.tenants, 4);
        assert_eq!(run.spec.topology.num_nodes(), 2);
        assert_eq!(run.spec.placement, NodePolicy::RoundRobin);
        assert!(!run.spec.node_metrics);
        assert!(run.threads.is_none());
        assert_eq!(run.spec.duration, SimDuration::from_secs(30));
        assert_eq!(run.seeds, vec![42]);
        assert!(run.trace.is_none());
    }

    #[test]
    fn serve_full_argument_set_parses() {
        let run = parse_serve_args(&args(
            "--arrivals mmpp:40rps:5rps:500ms:2s --duration 20s --tenants 8 \
             --apps GA,MC --queue-depth 16 --rate-limit 10:4 --window 2s \
             --server-threads 6 --mode rain --lb gmin --gpu-policy tfs \
             --nodes 1 --scope local --seed 9 --seeds 2",
        ))
        .unwrap();
        assert_eq!(run.spec.tenants, 8);
        assert_eq!(run.spec.apps, vec![AppKind::GA, AppKind::MC]);
        assert_eq!(run.spec.admission.queue_depth, 16);
        let rl = run.spec.admission.rate_limit.unwrap();
        assert_eq!((rl.rate_rps, rl.burst), (10.0, 4.0));
        assert_eq!(run.spec.window, SimDuration::from_secs(2));
        assert_eq!(run.spec.server_threads, 6);
        assert_eq!(run.spec.topology.num_nodes(), 1);
        assert_eq!(run.spec.scope, LbScope::Local);
        assert_eq!(run.seeds.len(), 2);
        assert_eq!(run.spec.stack.label(), "GMinTFS-Rain");
    }

    #[test]
    fn topology_flag_builds_clusters() {
        let run = parse_args(&args("--topology 4x2:c2050 --app MC:4:1.0:3")).unwrap();
        assert_eq!(run.scenario.topology.num_nodes(), 4);
        assert_eq!(run.scenario.topology.num_devices(), 8);
        // --topology overrides the --nodes sugar.
        let run = parse_args(&args("--nodes 2 --topology single")).unwrap();
        assert_eq!(run.scenario.topology.num_nodes(), 1);
        // Stream validation follows the parsed topology.
        assert!(parse_args(&args("--topology 2x1 --app MC:4:1.0:5")).is_err());
        assert!(parse_args(&args("--topology 0x4")).is_err());
    }

    #[test]
    fn serve_topology_placement_and_threads_parse() {
        let run = parse_serve_args(&args(
            "--topology 8x4:c2050@calibrated --placement least --threads 4 --node-metrics",
        ))
        .unwrap();
        assert_eq!(run.spec.topology.num_nodes(), 8);
        assert_eq!(run.spec.topology.num_devices(), 32);
        assert_eq!(run.spec.placement, NodePolicy::LeastTenants);
        assert!(run.spec.node_metrics);
        assert_eq!(run.threads, Some(4));
        assert!(parse_serve_args(&args("--placement random")).is_err());
        assert!(parse_serve_args(&args("--threads 0")).is_err());
        assert!(parse_serve_args(&args("--topology 4x4@warp9")).is_err());
    }

    #[test]
    fn serve_rejects_bad_input() {
        assert!(parse_serve_args(&args("--arrivals lognormal:3rps")).is_err());
        assert!(parse_serve_args(&args("--duration 0s")).is_err());
        assert!(parse_serve_args(&args("--tenants 0")).is_err());
        assert!(parse_serve_args(&args("--apps ZZ")).is_err());
        assert!(parse_serve_args(&args("--queue-depth 0")).is_err());
        assert!(parse_serve_args(&args("--rate-limit 0")).is_err());
        assert!(parse_serve_args(&args("--slo-target 0s")).is_err());
        assert!(parse_serve_args(&args("--frobnicate")).is_err());
    }

    #[test]
    fn serve_slo_target_and_frag_balancer_parse() {
        let run = parse_serve_args(&args("--slo-target 50ms --lb frag")).unwrap();
        let slo = run.spec.admission.slo.expect("--slo-target sets the gate");
        assert_eq!(slo.target_wait_ns, 50_000_000);
        assert_eq!(parse_lb("frag").unwrap(), LbPolicy::Frag);
        // Off by default: the SLO gate is opt-in.
        assert!(parse_serve_args(&[]).unwrap().spec.admission.slo.is_none());
    }

    #[test]
    fn serve_parsed_spec_actually_runs() {
        let run = parse_serve_args(&args(
            "--arrivals fixed:2rps --duration 5s --nodes 1 --tenants 2",
        ))
        .unwrap();
        let stats = run.spec.run();
        let report = run.spec.slo(&stats);
        assert!(report.completed > 0);
        assert!(stats.admission.is_some());
    }

    #[test]
    fn trace_flag_records_a_trace() {
        let run = parse_args(&args("--app GA:2:1.0 --trace out.json")).unwrap();
        assert!(run.scenario.trace);
        assert_eq!(run.trace.as_deref(), Some("out.json"));
        let stats = run.scenario.run();
        let trace = stats.trace.expect("traced run records a trace");
        assert!(!trace.tracks.is_empty());
        assert!(!trace.events.is_empty());
    }

    #[test]
    fn serve_observability_flags_parse() {
        let run = parse_serve_args(&args(
            "--faults nodeloss@10s:node1 --burn-alert 40ms:0.02 \
             --alert-windows 60s:600s --alert-factor 3 --flight-depth 128 \
             --dump out.jsonl --dump-at 12s",
        ))
        .unwrap();
        assert_eq!(run.spec.faults.len(), 1);
        let cfg = run.spec.burn_alert.expect("--burn-alert sets the rule");
        assert_eq!(cfg.target_ns, 40_000_000);
        assert!((cfg.budget - 0.02).abs() < 1e-12);
        assert_eq!(cfg.short_ns, 60_000_000_000);
        assert_eq!(cfg.long_ns, 600_000_000_000);
        assert!((cfg.factor - 3.0).abs() < 1e-12);
        assert_eq!(run.spec.flight_depth, Some(128));
        assert_eq!(run.dump.as_deref(), Some("out.jsonl"));
        assert_eq!(run.spec.dump_at, Some(SimDuration::from_secs(12)));
        assert!(run.spec.dump_final, "--dump implies a final snapshot");
        // Budget defaults to 1% when omitted.
        let run = parse_serve_args(&args("--burn-alert 40ms")).unwrap();
        let cfg = run.spec.burn_alert.unwrap();
        assert!((cfg.budget - 0.01).abs() < 1e-12);
        assert_eq!(cfg.short_ns, 300_000_000_000);
        // All off by default: the observability surface is opt-in except
        // the always-on recorder (flight_depth None = default depth).
        let run = parse_serve_args(&[]).unwrap();
        assert!(run.spec.burn_alert.is_none());
        assert!(run.spec.flight_depth.is_none());
        assert!(run.dump.is_none());
        assert!(!run.spec.dump_final);
    }

    #[test]
    fn serve_observability_flags_reject_bad_input() {
        assert!(parse_serve_args(&args("--faults warp9@10s:node1")).is_err());
        assert!(parse_serve_args(&args("--burn-alert 0s")).is_err());
        assert!(parse_serve_args(&args("--burn-alert 40ms:1.5")).is_err());
        assert!(parse_serve_args(&args("--burn-alert 40ms --alert-windows 600s:60s")).is_err());
        assert!(parse_serve_args(&args("--burn-alert 40ms --alert-factor 0")).is_err());
        // Tuning flags without the rule they tune.
        assert!(parse_serve_args(&args("--alert-windows 60s:600s")).is_err());
        assert!(parse_serve_args(&args("--alert-factor 2")).is_err());
        // --dump-at without a dump path to write.
        assert!(parse_serve_args(&args("--dump-at 10s")).is_err());
    }

    #[test]
    fn explain_args_force_attribution() {
        let (req, run) = parse_explain_args(&args("17 --duration 5s --seed 9")).unwrap();
        assert_eq!(req, 17);
        assert_eq!(run.spec.explain, Some(17));
        assert!(run.spec.attribution, "explain needs stage charges");
        assert!(!run.attribution, "no attribution report dump on stdout");
        assert_eq!(run.seeds, vec![9]);
        assert!(parse_explain_args(&args("")).is_err());
        assert!(parse_explain_args(&args("not-a-number")).is_err());
        assert!(parse_explain_args(&args("17 --frobnicate")).is_err());
    }
}
