//! Seed-parallel scenario fan-out.
//!
//! The DES core is single-threaded and deterministic; experiments that
//! average over seeds or sweep configurations run their *independent*
//! simulations in parallel across OS threads — the idiomatic place for
//! parallelism in an HPC-style Rust codebase (parallelize the
//! embarrassingly parallel outer loop, keep the inner kernel sequential
//! and reproducible).

use crate::scenario::Scenario;
use crate::stats::RunStats;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Sweep-parallelism override: 0 means "one worker per core".
static THREADS: AtomicUsize = AtomicUsize::new(0);

/// Pin the number of sweep worker threads (0 restores the per-core
/// default). Results are order-preserving and seed-deterministic either
/// way; pinning exists so benchmark runs are reproducible machine-to-
/// machine (`bench_suite --threads N`, `--threads` on experiment CLIs).
pub fn set_threads(n: usize) {
    THREADS.store(n, Ordering::Relaxed);
}

/// Current sweep parallelism: the pinned value, or the core count.
pub fn threads() -> usize {
    match THREADS.load(Ordering::Relaxed) {
        0 => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4),
        n => n,
    }
}

/// Run `total` independent simulations through a worker pool, preserving
/// index order in the output. The shared driver behind [`run_all`] and
/// [`run_seeds`].
fn run_indexed<F>(total: usize, run: F) -> Vec<RunStats>
where
    F: Fn(usize) -> RunStats + Sync,
{
    let threads = threads().min(total);
    if total <= 1 || threads <= 1 {
        return (0..total).map(run).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<parking_lot::Mutex<Option<RunStats>>> =
        (0..total).map(|_| parking_lot::Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        let workers: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= total {
                        break;
                    }
                    let stats = run(i);
                    *slots[i].lock() = Some(stats);
                })
            })
            .collect();
        // Join explicitly so a panicking scenario resurfaces with its
        // original payload (scope's implicit join would replace it with
        // a generic "a scoped thread panicked").
        for worker in workers {
            if let Err(payload) = worker.join() {
                std::panic::resume_unwind(payload);
            }
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("worker loop claimed every index in 0..total")
        })
        .collect()
}

/// Run every scenario, in parallel, preserving input order in the output.
pub fn run_all(scenarios: Vec<Scenario>) -> Vec<RunStats> {
    run_indexed(scenarios.len(), |i| scenarios[i].run())
}

/// Run one shared scenario across several seeds, in parallel, preserving
/// seed order in the output. No per-seed clone: each worker replans from
/// the borrowed base via [`Scenario::run_with_seed`].
pub fn run_seeds(base: &Scenario, seeds: &[u64]) -> Vec<RunStats> {
    run_indexed(seeds.len(), |i| base.run_with_seed(seeds[i]))
}

/// Run one shared serving spec across several seeds, in parallel,
/// preserving seed order — the serve-mode analogue of [`run_seeds`].
pub fn run_serve_seeds(base: &crate::serve::ServeSpec, seeds: &[u64]) -> Vec<RunStats> {
    run_indexed(seeds.len(), |i| base.run_with_seed(seeds[i]))
}

/// Run the same scenario across several seeds and return the mean of a
/// metric extracted from each run.
pub fn mean_over_seeds(base: &Scenario, seeds: &[u64], metric: impl Fn(&RunStats) -> f64) -> f64 {
    let runs = run_seeds(base, seeds);
    let sum: f64 = runs.iter().map(&metric).sum();
    sum / runs.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::StreamSpec;
    use strings_core::config::StackConfig;
    use strings_core::mapper::LbPolicy;
    use strings_workloads::profile::AppKind;

    fn tiny(seed: u64) -> Scenario {
        Scenario::single_node(
            StackConfig::strings(LbPolicy::GMin),
            vec![StreamSpec::of(AppKind::GA, 2, 1.0)],
            seed,
        )
    }

    #[test]
    fn parallel_matches_sequential() {
        let scenarios: Vec<Scenario> = (0..6).map(tiny).collect();
        let par = run_all(scenarios.clone());
        let seq: Vec<_> = scenarios.iter().map(Scenario::run).collect();
        for (p, s) in par.iter().zip(&seq) {
            assert_eq!(p.mean_completion_ns(), s.mean_completion_ns());
            assert_eq!(p.events, s.events);
        }
    }

    #[test]
    fn mean_over_seeds_averages() {
        let m = mean_over_seeds(&tiny(0), &[1, 2, 3], |s| s.completed_requests as f64);
        assert_eq!(m, 2.0);
    }

    #[test]
    fn run_seeds_matches_per_seed_clones() {
        // The clone-free sweep must produce exactly what the old
        // clone-scenario-and-set-seed pattern produced.
        let base = tiny(999);
        let runs = run_seeds(&base, &[1, 2, 3]);
        for (&seed, r) in [1u64, 2, 3].iter().zip(&runs) {
            let mut cloned = base.clone();
            cloned.seed = seed;
            let expect = cloned.run();
            assert_eq!(r.events, expect.events);
            assert_eq!(r.makespan_ns, expect.makespan_ns);
            assert_eq!(r.mean_completion_ns(), expect.mean_completion_ns());
        }
    }

    #[test]
    fn single_scenario_short_circuits() {
        let out = run_all(vec![tiny(5)]);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].completed_requests, 2);
    }

    #[test]
    fn worker_panic_resurfaces_with_original_payload() {
        // A scenario with no GPUs makes World::new panic inside a worker
        // thread; run_all must re-raise that payload, not a generic
        // "a scoped thread panicked" or a poisoned-slot expect.
        let mut bad = tiny(1);
        bad.topology = remoting::topology::TopologySpec::of_nodes(Vec::new());
        let scenarios = vec![tiny(0), bad, tiny(2), tiny(3)];
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run_all(scenarios)))
            .expect_err("the empty topology must panic");
        let msg = err
            .downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| err.downcast_ref::<String>().cloned())
            .expect("panic payload is a string");
        assert!(
            msg.contains("topology has no GPUs"),
            "original payload lost, got: {msg}"
        );
    }
}
