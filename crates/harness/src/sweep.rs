//! Seed-parallel scenario fan-out.
//!
//! The DES core is single-threaded and deterministic; experiments that
//! average over seeds or sweep configurations run their *independent*
//! simulations in parallel across OS threads — the idiomatic place for
//! parallelism in an HPC-style Rust codebase (parallelize the
//! embarrassingly parallel outer loop, keep the inner kernel sequential
//! and reproducible).

use crate::scenario::Scenario;
use crate::stats::RunStats;

/// Run every scenario, in parallel, preserving input order in the output.
pub fn run_all(scenarios: Vec<Scenario>) -> Vec<RunStats> {
    if scenarios.len() <= 1 {
        return scenarios.iter().map(Scenario::run).collect();
    }
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(scenarios.len());
    let total = scenarios.len();
    let next = std::sync::atomic::AtomicUsize::new(0);
    let slots: Vec<parking_lot::Mutex<Option<RunStats>>> =
        (0..total).map(|_| parking_lot::Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        let workers: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if i >= total {
                        break;
                    }
                    let stats = scenarios[i].run();
                    *slots[i].lock() = Some(stats);
                })
            })
            .collect();
        // Join explicitly so a panicking scenario resurfaces with its
        // original payload (scope's implicit join would replace it with
        // a generic "a scoped thread panicked").
        for worker in workers {
            if let Err(payload) = worker.join() {
                std::panic::resume_unwind(payload);
            }
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("worker loop claimed every index in 0..total")
        })
        .collect()
}

/// Run the same scenario across several seeds and return the mean of a
/// metric extracted from each run.
pub fn mean_over_seeds(base: &Scenario, seeds: &[u64], metric: impl Fn(&RunStats) -> f64) -> f64 {
    let scenarios: Vec<Scenario> = seeds
        .iter()
        .map(|&seed| {
            let mut s = base.clone();
            s.seed = seed;
            s
        })
        .collect();
    let runs = run_all(scenarios);
    let sum: f64 = runs.iter().map(&metric).sum();
    sum / runs.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::StreamSpec;
    use strings_core::config::StackConfig;
    use strings_core::mapper::LbPolicy;
    use strings_workloads::profile::AppKind;

    fn tiny(seed: u64) -> Scenario {
        Scenario::single_node(
            StackConfig::strings(LbPolicy::GMin),
            vec![StreamSpec::of(AppKind::GA, 2, 1.0)],
            seed,
        )
    }

    #[test]
    fn parallel_matches_sequential() {
        let scenarios: Vec<Scenario> = (0..6).map(tiny).collect();
        let par = run_all(scenarios.clone());
        let seq: Vec<_> = scenarios.iter().map(Scenario::run).collect();
        for (p, s) in par.iter().zip(&seq) {
            assert_eq!(p.mean_completion_ns(), s.mean_completion_ns());
            assert_eq!(p.events, s.events);
        }
    }

    #[test]
    fn mean_over_seeds_averages() {
        let m = mean_over_seeds(&tiny(0), &[1, 2, 3], |s| s.completed_requests as f64);
        assert_eq!(m, 2.0);
    }

    #[test]
    fn single_scenario_short_circuits() {
        let out = run_all(vec![tiny(5)]);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].completed_requests, 2);
    }

    #[test]
    fn worker_panic_resurfaces_with_original_payload() {
        // A scenario with no GPUs makes World::new panic inside a worker
        // thread; run_all must re-raise that payload, not a generic
        // "a scoped thread panicked" or a poisoned-slot expect.
        let mut bad = tiny(1);
        bad.nodes = Vec::new();
        let scenarios = vec![tiny(0), bad, tiny(2), tiny(3)];
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run_all(scenarios)))
            .expect_err("the empty topology must panic");
        let msg = err
            .downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| err.downcast_ref::<String>().cloned())
            .expect("panic payload is a string");
        assert!(
            msg.contains("topology has no GPUs"),
            "original payload lost, got: {msg}"
        );
    }
}
