//! Open-loop serving scenarios (`strings-sim serve`).
//!
//! Batch scenarios ([`crate::scenario::Scenario`]) run a fixed request
//! count per application; a [`ServeSpec`] instead runs the supernode as a
//! **cloud service**: a seeded arrival process
//! ([`strings_workloads::arrivals::ArrivalProcess`]) offers requests for a
//! fixed virtual-time duration, each arrival is assigned to one of `N`
//! tenants, and an admission front door
//! ([`strings_core::admission::AdmissionController`]) sheds what the
//! supernode cannot absorb. The run's quality is summarized by an
//! [`strings_metrics::slo::SloReport`] instead of makespan: latency
//! percentiles, goodput, shed rate, and windowed per-tenant fairness.
//!
//! Determinism matches the batch path: the request schedule is planned
//! up front from the seed (arrival times, tenant assignment, generated
//! host programs), so a serve run is byte-reproducible and seed sweeps
//! can fan out across threads ([`crate::sweep::run_serve_seeds`]).

use crate::scenario::{HostCosts, LbScope};
use crate::stats::RunStats;
use crate::world::{PlannedRequest, World};
use gpu_sim::device::DeviceConfig;
use remoting::topology::TopologySpec;
use sim_core::fault::FaultPlan;
use sim_core::rng::SimRng;
use sim_core::SimDuration;
use strings_core::admission::AdmissionConfig;
use strings_core::config::StackConfig;
use strings_core::device_sched::TenantId;
use strings_core::mapper::WorkloadClass;
use strings_core::placement::{ClusterPlacer, NodePolicy};
use strings_metrics::slo::SloReport;
use strings_workloads::arrivals::ArrivalProcess;
use strings_workloads::profile::AppKind;
use strings_workloads::tracegen::TraceGenerator;

/// One open-loop serving scenario: topology + stack + offered load +
/// admission policy. Compile and run with [`ServeSpec::run`].
#[derive(Debug, Clone)]
pub struct ServeSpec {
    /// Machines, their GPUs, and the network joining them.
    pub topology: TopologySpec,
    /// Cluster placement: which node hosts each tenant's frontend.
    pub placement: NodePolicy,
    /// Scheduler stack under test.
    pub stack: StackConfig,
    /// Balancer scope.
    pub scope: LbScope,
    /// Device/driver timing.
    pub device_cfg: DeviceConfig,
    /// Host-side costs.
    pub costs: HostCosts,
    /// The offered load.
    pub arrivals: ArrivalProcess,
    /// How long requests keep arriving (the run itself drains the tail).
    pub duration: SimDuration,
    /// Number of tenants; each arrival is assigned one by a seeded draw
    /// (or by the trace's `tenant` field under replay).
    pub tenants: usize,
    /// Application mix: tenant `t` serves `apps[t % apps.len()]`.
    pub apps: Vec<AppKind>,
    /// The admission front door shared by every tenant.
    pub admission: AdmissionConfig,
    /// Sliding-window width for the fairness part of the SLO report.
    pub window: SimDuration,
    /// Server threads per tenant (in-flight cap past admission).
    pub server_threads: usize,
    /// Faults to inject during the run.
    pub faults: FaultPlan,
    /// RNG seed.
    pub seed: u64,
    /// Record a structured trace of the run.
    pub trace: bool,
    /// Record latency attribution (lightweight stage charging; implied by
    /// [`ServeSpec::trace`], which records a superset).
    pub attribution: bool,
    /// Sample the unified metrics registry on this virtual-time cadence
    /// (None = no metrics).
    pub metrics_every: Option<SimDuration>,
    /// Also register per-node rollup families in the registry (opt-in so
    /// the default exposition stays stable; most useful at cluster scale).
    pub node_metrics: bool,
    /// Flight-recorder ring depth per node. `None` keeps the always-on
    /// default; `Some(0)` disables recording (the overhead-gate
    /// baseline).
    pub flight_depth: Option<usize>,
    /// Multi-window SLO burn-rate rule; terminal request outcomes feed
    /// the engine and FIRED transitions dump the flight recorder.
    pub burn_alert: Option<strings_metrics::alerts::BurnRateConfig>,
    /// Explicit flight-recorder dump at this virtual time (`--dump-at`).
    pub dump_at: Option<SimDuration>,
    /// Snapshot the recorder at end-of-run if no trigger fired, so a
    /// `--dump PATH` always has a window to write.
    pub dump_final: bool,
    /// Capture this request's full flight-record chain into
    /// [`RunStats::explain_records`] (the `strings-sim explain` source).
    pub explain: Option<u64>,
    /// Record wall-clock per executive phase into
    /// [`RunStats::self_profile`] (bench trajectory only).
    pub self_profile: bool,
}

impl ServeSpec {
    /// A single-node (NodeA) serving scenario with defaults: 4 tenants of
    /// the short-running Gaussian app, queue depth 64, a 1 s fairness
    /// window, 8 server threads per tenant.
    pub fn single_node(
        stack: StackConfig,
        arrivals: ArrivalProcess,
        duration: SimDuration,
        seed: u64,
    ) -> Self {
        Self::on(TopologySpec::node_a(), stack, arrivals, duration, seed)
    }

    /// The paper's emulated supernode (NodeA + NodeB) as the serving
    /// substrate; otherwise the [`ServeSpec::single_node`] defaults.
    pub fn supernode(
        stack: StackConfig,
        arrivals: ArrivalProcess,
        duration: SimDuration,
        seed: u64,
    ) -> Self {
        Self::on(TopologySpec::supernode(), stack, arrivals, duration, seed)
    }

    /// Serve on an explicit [`TopologySpec`] — the general constructor the
    /// canned shorthands delegate to. Defaults: 4 tenants of the
    /// short-running Gaussian app, round-robin tenant placement, queue
    /// depth 64, a 1 s fairness window, 8 server threads per tenant.
    pub fn on(
        topology: TopologySpec,
        stack: StackConfig,
        arrivals: ArrivalProcess,
        duration: SimDuration,
        seed: u64,
    ) -> Self {
        ServeSpec {
            topology,
            placement: NodePolicy::RoundRobin,
            stack,
            scope: LbScope::Global,
            device_cfg: DeviceConfig::default(),
            costs: HostCosts::default(),
            arrivals,
            duration,
            tenants: 4,
            apps: vec![AppKind::GA],
            admission: AdmissionConfig::default(),
            window: SimDuration::from_secs(1),
            server_threads: 8,
            faults: FaultPlan::none(),
            seed,
            trace: false,
            attribution: false,
            metrics_every: None,
            node_metrics: false,
            flight_depth: None,
            burn_alert: None,
            dump_at: None,
            dump_final: false,
            explain: None,
            self_profile: false,
        }
    }

    /// Compile the open-loop request schedule for an explicit seed. One
    /// slot per tenant: per-tenant queueing, fairness and SLO accounting
    /// all key off the slot. Deterministic in the seed — arrival times,
    /// tenant assignment, and generated host programs each draw from
    /// their own fork of the root RNG.
    pub fn plan_with_seed(&self, seed: u64) -> Vec<PlannedRequest> {
        assert!(self.tenants > 0, "serve mode needs at least one tenant");
        assert!(!self.apps.is_empty(), "serve mode needs an app mix");
        let mut root = SimRng::new(seed);
        let mut arrival_rng = root.fork(0xA881);
        let mut tenant_rng = root.fork(0x7E4A);
        let mut gen_rng = root.fork(0x6E4);
        let gen = TraceGenerator::default();
        // Cluster placement tier: tenant -> node, sticky per tenant. The
        // round-robin default reproduces the historical `tenant % n_nodes`
        // striping byte-for-byte on dense node ids.
        let node_ids: Vec<_> = self.topology.nodes().iter().map(|n| n.id).collect();
        let mut placer = ClusterPlacer::new(&node_ids, self.placement);
        self.arrivals
            .generate(self.duration, &mut arrival_rng)
            .into_iter()
            .map(|a| {
                let tenant = match a.tenant_hint {
                    Some(t) => t as usize % self.tenants,
                    None => tenant_rng.index(self.tenants),
                };
                let app = self.apps[tenant % self.apps.len()];
                PlannedRequest {
                    arrival: a.at,
                    slot: tenant,
                    class: WorkloadClass(app as u32),
                    node: placer.place(tenant as u32),
                    tenant: TenantId(tenant as u32),
                    weight: 1.0,
                    server_threads: self.server_threads,
                    program: gen.generate(&app.profile(), &mut gen_rng),
                }
            })
            .collect()
    }

    /// Run to completion (arrivals stop at [`ServeSpec::duration`]; the
    /// run then drains every admitted request) and return the stats with
    /// [`RunStats::slo_records`] populated.
    pub fn run(&self) -> RunStats {
        self.run_with_seed(self.seed)
    }

    /// Run with an explicit seed, ignoring [`ServeSpec::seed`] (seed
    /// sweeps share one base spec).
    pub fn run_with_seed(&self, seed: u64) -> RunStats {
        let requests = self.plan_with_seed(seed);
        let mut world = World::new(
            &self.topology,
            self.device_cfg,
            self.stack,
            self.scope,
            self.costs,
            requests,
            None,
        );
        world.set_seed(seed);
        world.set_admission(self.tenants, self.admission);
        world.enable_request_log();
        world.set_fault_plan(&self.faults);
        if self.trace {
            world.enable_tracing();
        } else if self.attribution {
            world.enable_attribution();
        }
        if let Some(every) = self.metrics_every {
            world.enable_metrics(every);
            if self.node_metrics {
                world.enable_node_metrics();
            }
        }
        if let Some(depth) = self.flight_depth {
            world.set_flight_depth(depth);
        }
        // After enable_metrics so the alert gauges register.
        if let Some(cfg) = self.burn_alert {
            world.set_burn_alert(cfg);
        }
        if let Some(at) = self.dump_at {
            world.set_dump_at(at.as_ns());
        }
        if self.dump_final {
            world.set_dump_final();
        }
        if let Some(req) = self.explain {
            world.set_explain(req);
        }
        if self.self_profile {
            world.enable_self_profile();
        }
        world.run()
    }

    /// Reconstruct the per-request latency attribution of a run of this
    /// spec. Requires [`ServeSpec::attribution`] (or `trace`) to have been
    /// set for the run.
    pub fn attribution(&self, stats: &RunStats) -> strings_metrics::AttributionReport {
        let trace = stats
            .trace
            .as_ref()
            .expect("attribution needs a run with attribution or trace enabled");
        strings_metrics::AttributionReport::from_trace(trace)
    }

    /// Condense a run of this spec into its SLO report.
    pub fn slo(&self, stats: &RunStats) -> SloReport {
        stats.slo_report(self.tenants, self.duration, self.window)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use strings_core::admission::RateLimit;
    use strings_core::mapper::LbPolicy;

    fn quick(seed: u64) -> ServeSpec {
        let mut s = ServeSpec::single_node(
            StackConfig::strings(LbPolicy::GMin),
            ArrivalProcess::parse("poisson:2rps").unwrap(),
            SimDuration::from_secs(10),
            seed,
        );
        s.admission.queue_depth = 4;
        s
    }

    #[test]
    fn serve_runs_end_to_end() {
        let spec = quick(7);
        let stats = spec.run();
        let report = spec.slo(&stats);
        assert!(report.completed > 0, "some requests must complete");
        assert_eq!(
            report.completed,
            stats.slo_records.len() as u64,
            "one record per completion"
        );
        assert_eq!(
            report.completed + report.shed + report.failed,
            stats.admission.unwrap().offered() + stats.shed_requests
                - stats.admission.unwrap().shed(),
            "every offered request reaches a terminal state"
        );
        assert!(report.p50 <= report.p95 && report.p95 <= report.p999);
    }

    #[test]
    fn plan_is_deterministic_and_tenant_dense() {
        let spec = quick(11);
        let a = spec.plan_with_seed(11);
        let b = spec.plan_with_seed(11);
        assert!(!a.is_empty());
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.arrival, y.arrival);
            assert_eq!(x.tenant, y.tenant);
        }
        assert!(a.iter().all(|r| (r.tenant.0 as usize) < spec.tenants));
        assert!(a.windows(2).all(|w| w[0].arrival <= w[1].arrival));
    }

    #[test]
    fn overload_sheds_instead_of_queueing_unboundedly() {
        // Offered load far beyond one node's capacity with a tiny queue:
        // most requests must shed, and the run still terminates.
        let mut spec = quick(3);
        spec.arrivals = ArrivalProcess::parse("poisson:50rps").unwrap();
        spec.admission.queue_depth = 2;
        let stats = spec.run();
        let report = spec.slo(&stats);
        assert!(
            report.shed_rate > 0.5,
            "expected heavy shedding, got {}",
            report.shed_rate
        );
        assert_eq!(stats.shed_requests, stats.admission.unwrap().shed());
    }

    #[test]
    fn rate_limit_caps_admissions() {
        let mut spec = quick(5);
        spec.arrivals = ArrivalProcess::parse("poisson:20rps").unwrap();
        spec.admission.queue_depth = 1000;
        // 4 tenants × 1 rps sustained ≤ ~40 admits over 10 s of arrivals.
        spec.admission.rate_limit = Some(RateLimit {
            rate_rps: 1.0,
            burst: 1.0,
        });
        let stats = spec.run();
        let adm = stats.admission.unwrap();
        assert!(adm.shed_rate_limited > 0, "the bucket must shed");
        assert!(
            adm.admitted <= 48,
            "token buckets must cap admissions, got {}",
            adm.admitted
        );
    }
}
