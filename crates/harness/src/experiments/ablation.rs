//! Ablation — which Strings design choices buy what.
//!
//! Two sweeps on a fixed workload mix (pair B = DXTC + MonteCarlo on the
//! supernode):
//!
//! * **backend designs** (paper Figure 5): Design I (per-app processes),
//!   Design II (single master thread — a `cudaDeviceSynchronize` blocks all
//!   tenants), Design III (per-GPU threads — Strings),
//! * **packer translations**: full Strings with one Context Packer
//!   translation disabled at a time (AST private streams, SST sync
//!   rewriting, MOT pinned-async copies, non-blocking RPCs).
//!
//! Output is the slowdown of each variant relative to full Strings —
//! quantifying the paper's §III.B design arguments.

use super::common::{mean_ct, pair_streams, ExpScale};
use crate::scenario::Scenario;
use remoting::backend::BackendDesign;
use strings_core::config::StackConfig;
use strings_core::mapper::LbPolicy;
use strings_metrics::report::Table;
use strings_workloads::pairs::{workload_pair, PairLabel};

/// One ablation variant.
#[derive(Debug, Clone)]
pub struct Variant {
    /// What was changed.
    pub label: String,
    /// Mean completion time, ns.
    pub mean_ct_ns: f64,
    /// Slowdown versus full Strings (1.0 = no change).
    pub slowdown: f64,
}

/// Ablation results.
#[derive(Debug, Clone)]
pub struct Results {
    /// Full-Strings reference completion time, ns.
    pub reference_ns: f64,
    /// All variants.
    pub variants: Vec<Variant>,
}

/// All ablation variants: (label, configuration).
pub fn variants() -> Vec<(String, StackConfig)> {
    let full = StackConfig::strings(LbPolicy::GWtMin);
    let mut v: Vec<(String, StackConfig)> = Vec::new();
    // Backend designs.
    v.push(("design-I (per-app process, Rain)".into(), {
        let mut c = StackConfig::rain(LbPolicy::GWtMin);
        c.rpc = full.rpc;
        c
    }));
    v.push(("design-II (single master)".into(), {
        let mut c = full;
        c.design = BackendDesign::SingleMaster;
        // The single master's context packs streams but cannot rewrite the
        // blocking device synchronize — that is its flaw.
        c.packer.sync_to_stream = false;
        c
    }));
    // Packer translations off, one at a time.
    v.push(("no AST (shared default stream)".into(), {
        let mut c = full;
        c.packer.auto_stream = false;
        c
    }));
    v.push(("no SST (device-wide syncs)".into(), {
        let mut c = full;
        c.packer.sync_to_stream = false;
        c
    }));
    v.push(("no MOT (pageable sync copies)".into(), {
        let mut c = full;
        c.packer.async_memcpy = false;
        c
    }));
    v.push(("no async RPC".into(), {
        let mut c = full;
        c.packer.nonblocking_rpc = false;
        c
    }));
    v
}

/// Run the ablation on one pair.
pub fn run_pair(scale: &ExpScale, label: PairLabel) -> Results {
    let (a, b) = workload_pair(label);
    let streams = pair_streams(a, b, scale);
    let full = StackConfig::strings(LbPolicy::GWtMin);
    let reference_ns = mean_ct(&Scenario::supernode(full, streams.clone(), 0), scale);
    let variants = variants()
        .into_iter()
        .map(|(label, cfg)| {
            let ct = mean_ct(&Scenario::supernode(cfg, streams.clone(), 0), scale);
            Variant {
                label,
                mean_ct_ns: ct,
                slowdown: ct / reference_ns,
            }
        })
        .collect();
    Results {
        reference_ns,
        variants,
    }
}

/// Default ablation: pair B (DXTC + MonteCarlo).
pub fn run(scale: &ExpScale) -> Results {
    run_pair(scale, PairLabel('B'))
}

/// Render as a table.
pub fn table(r: &Results) -> Table {
    let mut t = Table::new(vec!["variant", "mean CT (s)", "slowdown vs full Strings"]);
    t.row(vec![
        "full Strings (GWtMin, design-III)".to_string(),
        format!("{:.2}", r.reference_ns / 1e9),
        "1.00x".to_string(),
    ]);
    for v in &r.variants {
        t.row(vec![
            v.label.clone(),
            format!("{:.2}", v.mean_ct_ns / 1e9),
            format!("{:.2}x", v.slowdown),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn removing_translations_never_helps_much() {
        let r = run(&ExpScale::quick());
        assert_eq!(r.variants.len(), 6);
        for v in &r.variants {
            // No ablated variant should be meaningfully faster than the
            // full system (small noise margin allowed).
            assert!(
                v.slowdown > 0.93,
                "{} unexpectedly faster: {:.3}",
                v.label,
                v.slowdown
            );
        }
        // Dropping the MOT costs transfer-heavy MC dearly.
        let mot = r
            .variants
            .iter()
            .find(|v| v.label.starts_with("no MOT"))
            .unwrap();
        assert!(mot.slowdown > 1.02, "MOT should matter: {}", mot.slowdown);
    }
}
