//! Extension — latency attribution per scheduler stack.
//!
//! The paper argues its wins come from moving requests *out of queues*:
//! workload balancing spreads contexts across the gPool and device
//! scheduling keeps engines fed, so less of each request's life is spent
//! waiting for a GPU and more of it doing work. This experiment makes
//! that argument measurable: the same open-loop serving scenario as
//! `experiments::serve` runs with latency attribution enabled, and each
//! stack is judged on *where the nanoseconds went* — the exact-additive
//! stage breakdown of [`AttributionReport`] — instead of on aggregate
//! SLO numbers.
//!
//! Expected shape: the bare CUDA runtime piles every request on one
//! device per node, so queue-wait (admission + engine wait) dominates
//! its breakdown; Rain's balancer spreads the load; the full Strings
//! stack (balancer + device scheduler) pushes the queue-wait share
//! lowest and hands the freed share back to actual service.

use super::common::ExpScale;
use crate::serve::ServeSpec;
use sim_core::trace::Stage;
use sim_core::SimDuration;
use strings_core::config::StackConfig;
use strings_core::mapper::LbPolicy;
use strings_metrics::attribution::AttributionReport;
use strings_metrics::report::{fmt_pct, Table};
use strings_workloads::arrivals::ArrivalProcess;

/// Offered arrival rate (requests/s across all tenants) — matches
/// `experiments::serve` so the two tables describe the same regime.
const RATE_RPS: f64 = 3.0;

/// One stack's attribution outcome.
#[derive(Debug, Clone)]
pub struct Outcome {
    /// Stack label.
    pub label: String,
    /// Per-request stage breakdowns for the run.
    pub report: AttributionReport,
}

/// Attribution results, one outcome per scheduler stack.
#[derive(Debug, Clone)]
pub struct Results {
    /// Per-stack outcomes, in comparison order.
    pub outcomes: Vec<Outcome>,
}

/// The shared serving scenario (same shape as `experiments::serve`):
/// supernode under Poisson load, 4 tenants, bounded per-tenant queues —
/// with lightweight attribution recording switched on. A `--topology`
/// override swaps the cluster in exactly as `experiments::serve` does.
fn spec(stack: StackConfig, scale: &ExpScale) -> ServeSpec {
    let duration = SimDuration::from_secs(scale.requests.max(4) as u64);
    let mut s = match &scale.topology {
        None => ServeSpec::supernode(
            stack,
            ArrivalProcess::Poisson { rate_rps: RATE_RPS },
            duration,
            scale.seeds[0],
        ),
        Some(topo) => {
            let rate_rps = RATE_RPS * topo.num_devices() as f64 / 4.0;
            let mut s = ServeSpec::on(
                topo.clone(),
                stack,
                ArrivalProcess::Poisson { rate_rps },
                duration,
                scale.seeds[0],
            );
            s.tenants = topo.num_nodes().max(4);
            s
        }
    };
    s.admission.queue_depth = 8;
    s.faults = scale.faults.clone();
    s.attribution = true;
    s
}

/// Run the comparison: one attributed serve run per stack at the scale's
/// first seed.
pub fn run(scale: &ExpScale) -> Results {
    let stacks = vec![
        ("CUDA".to_string(), StackConfig::cuda_runtime()),
        ("GMin-Rain".to_string(), StackConfig::rain(LbPolicy::GMin)),
        (
            "GWtMin-Strings".to_string(),
            StackConfig::strings(LbPolicy::GWtMin),
        ),
    ];
    let outcomes = stacks
        .into_iter()
        .map(|(label, stack)| {
            let s = spec(stack, scale);
            let report = s.attribution(&s.run());
            Outcome { label, report }
        })
        .collect();
    Results { outcomes }
}

/// Render as a table: one row per stack with the coarse
/// where-did-the-time-go split (shares of aggregate latency).
pub fn table(r: &Results) -> Table {
    let mut t = Table::new(vec![
        "stack",
        "requests",
        "mean_ns",
        "queue_wait",
        "rpc",
        "host",
        "service",
        "ctx_switch",
        "other",
    ]);
    for o in &r.outcomes {
        let rep = &o.report;
        let n = rep.consistent().count() as u64;
        let total = rep.total_latency_ns();
        let totals = rep.totals();
        let share = |ns: u64| {
            if total == 0 {
                fmt_pct(0.0)
            } else {
                fmt_pct(ns as f64 / total as f64)
            }
        };
        let service = totals[Stage::H2dXfer.index()]
            + totals[Stage::ComputeService.index()]
            + totals[Stage::D2hXfer.index()];
        t.row(vec![
            o.label.clone(),
            n.to_string(),
            (total / n.max(1)).to_string(),
            share(
                totals[Stage::AdmissionWait.index()]
                    + totals[Stage::H2dWait.index()]
                    + totals[Stage::ComputeWait.index()]
                    + totals[Stage::D2hWait.index()],
            ),
            share(totals[Stage::Rpc.index()]),
            share(totals[Stage::HostCpu.index()]),
            share(service),
            share(totals[Stage::CtxSwitch.index()]),
            share(totals[Stage::Other.index()]),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attribution_comparison_runs_and_renders() {
        let r = run(&ExpScale::quick());
        assert_eq!(r.outcomes.len(), 3);
        for o in &r.outcomes {
            assert!(
                !o.report.requests.is_empty(),
                "{}: no requests attributed",
                o.label
            );
            assert_eq!(
                o.report.inconsistent, 0,
                "{}: healthy serve runs must attribute every request",
                o.label
            );
            for req in o.report.consistent() {
                assert_eq!(
                    req.stage_ns.iter().sum::<u64>(),
                    req.total_ns(),
                    "{}: request {} breaks additivity",
                    o.label,
                    req.request
                );
            }
        }
        let rendered = table(&r).render();
        assert!(rendered.contains("GWtMin-Strings"));
        assert!(rendered.contains("queue_wait"));
    }

    #[test]
    fn strings_reduces_queue_wait_share() {
        let r = run(&ExpScale::quick());
        let share = |label: &str| {
            r.outcomes
                .iter()
                .find(|o| o.label == label)
                .expect("stack present")
                .report
                .queue_wait_share()
        };
        assert!(
            share("GWtMin-Strings") <= share("CUDA") + 1e-9,
            "strings {} vs cuda {}",
            share("GWtMin-Strings"),
            share("CUDA")
        );
        assert!(
            share("GWtMin-Strings") <= share("GMin-Rain") + 1e-9,
            "strings {} vs rain {}",
            share("GWtMin-Strings"),
            share("GMin-Rain")
        );
    }
}
