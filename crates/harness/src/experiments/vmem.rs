//! Extension — virtual memory under memory pressure.
//!
//! The paper assumes arrival rates low enough that "GPU requests never
//! pile up to the degree that they run out of device memory", and points
//! at virtual-memory runtimes (Becchi et al., Gdev) as the way to drop
//! that assumption. This experiment quantifies the extension: a dense
//! burst whose aggregate working set exceeds a Quadro 2000's 1 GiB.
//!
//! Without vmem the overflow allocations fail (counted as OOM events);
//! with vmem every request completes, paying the thrashing slowdown while
//! memory is overcommitted.

use super::common::ExpScale;
use crate::scenario::{Scenario, StreamSpec};
use gpu_sim::spec::GpuModel;
use remoting::gpool::{NodeId, NodeSpec};
use remoting::topology::TopologySpec;
use strings_core::config::StackConfig;
use strings_core::device_sched::TenantId;
use strings_core::mapper::LbPolicy;
use strings_metrics::report::Table;
use strings_workloads::profile::AppKind;

/// One mode's outcome.
#[derive(Debug, Clone)]
pub struct Outcome {
    /// Mode label.
    pub label: &'static str,
    /// Requests completed.
    pub completed: u64,
    /// Allocation failures observed.
    pub oom_events: u64,
    /// Mean completion time, ns.
    pub mean_ct_ns: f64,
}

/// Results: without vs with virtual memory.
#[derive(Debug, Clone)]
pub struct Results {
    /// Plain Strings (allocations can fail).
    pub without: Outcome,
    /// Strings + vmem (allocations spill, kernels thrash).
    pub with_vmem: Outcome,
}

fn burst(scale: &ExpScale) -> Vec<StreamSpec> {
    // MonteCarlo allocates ~128 MiB per in-flight request: 12 concurrent
    // requests want ~1.5 GiB on a 1 GiB device.
    vec![StreamSpec {
        app: AppKind::MC,
        node: NodeId(0),
        tenant: TenantId(0),
        weight: 1.0,
        count: scale.requests.max(12),
        load: 6.0,
        server_threads: 12,
    }]
}

fn measure(vmem: bool, label: &'static str, scale: &ExpScale) -> Outcome {
    let node = NodeSpec::new(0, vec![GpuModel::Quadro2000]);
    let mut scen = Scenario::single_node(StackConfig::strings(LbPolicy::GMin), burst(scale), 3);
    scen.topology = TopologySpec::of_nodes(vec![node]);
    scen.device_cfg.vmem = vmem;
    let stats = scen.run();
    Outcome {
        label,
        completed: stats.completed_requests,
        oom_events: stats.oom_events,
        mean_ct_ns: stats.mean_completion_ns(),
    }
}

/// Run both modes.
pub fn run(scale: &ExpScale) -> Results {
    Results {
        without: measure(false, "no vmem (paper's assumption)", scale),
        with_vmem: measure(true, "vmem (Gdev/Becchi extension)", scale),
    }
}

/// Render as a table.
pub fn table(r: &Results) -> Table {
    let mut t = Table::new(vec!["mode", "completed", "OOM events", "mean CT (s)"]);
    for o in [&r.without, &r.with_vmem] {
        t.row(vec![
            o.label.to_string(),
            o.completed.to_string(),
            o.oom_events.to_string(),
            format!("{:.2}", o.mean_ct_ns / 1e9),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vmem_absorbs_memory_pressure() {
        let r = run(&ExpScale::quick());
        assert!(
            r.without.oom_events > 0,
            "the burst must overflow a 1 GiB device"
        );
        assert_eq!(r.with_vmem.oom_events, 0, "vmem never fails an alloc");
        assert_eq!(r.with_vmem.completed, r.without.completed);
        // Thrashing costs time relative to the (silently overflowing)
        // baseline.
        assert!(r.with_vmem.mean_ct_ns >= r.without.mean_ct_ns * 0.95);
    }
}
