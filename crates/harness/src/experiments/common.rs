//! Shared experiment plumbing: scales, normalized streams, speedup sweeps.

use crate::scenario::{LbScope, Scenario, StreamSpec};
use crate::sweep;
use gpu_sim::spec::GpuModel;
use remoting::gpool::NodeId;
use remoting::topology::TopologySpec;
use sim_core::fault::FaultPlan;
use strings_core::config::StackConfig;
use strings_core::device_sched::TenantId;
use strings_core::mapper::LbPolicy;
use strings_workloads::profile::AppKind;

/// Experiment size: request counts, offered load, seeds to average over.
#[derive(Debug, Clone)]
pub struct ExpScale {
    /// Requests per stream.
    pub requests: usize,
    /// Target offered load on the baseline device (see
    /// [`normalized_stream`]).
    pub load: f64,
    /// Seeds averaged over.
    pub seeds: Vec<u64>,
    /// Base path for trace output (`--trace` on the regeneration
    /// binaries); experiments that record traces write Chrome trace-event
    /// JSON files derived from this path.
    pub trace: Option<String>,
    /// Extra fault injections (`--faults` on the regeneration binaries),
    /// layered on top of whatever an experiment injects itself.
    pub faults: FaultPlan,
    /// Cluster override (`--topology` on the regeneration binaries).
    /// `None` keeps each experiment's canonical shape (the paper's
    /// supernode); serving experiments honour it by scaling their offered
    /// load and tenancy to the cluster.
    pub topology: Option<TopologySpec>,
}

impl ExpScale {
    /// Full scale used by the regeneration binaries.
    pub fn full() -> Self {
        ExpScale {
            requests: 30,
            load: 1.3,
            seeds: vec![101, 202, 303],
            trace: None,
            faults: FaultPlan::none(),
            topology: None,
        }
    }

    /// Reduced scale for Criterion benches and smoke tests.
    pub fn quick() -> Self {
        ExpScale {
            requests: 8,
            load: 1.3,
            seeds: vec![101],
            trace: None,
            faults: FaultPlan::none(),
            topology: None,
        }
    }
}

/// A stream whose arrival rate is normalized by the application's service
/// time on the node's *collision device* (local device 0 — where the bare
/// runtime's static device selection lands every request). This mirrors the
/// paper's λ tuning: arrival rates proportional to actual runtimes, chosen
/// so requests do not pile up without bound.
pub fn normalized_stream(
    app: AppKind,
    node: NodeId,
    tenant: TenantId,
    requests: usize,
    load: f64,
) -> StreamSpec {
    let collision_device = match node.0 {
        0 => GpuModel::Quadro2000.spec(),
        _ => GpuModel::Quadro4000.spec(),
    };
    let scale = app.profile().service_scale_on(&collision_device);
    StreamSpec {
        app,
        node,
        tenant,
        weight: 1.0,
        count: requests,
        load: load / scale,
        // A small SPECpower-style thread pool: enough concurrency to keep
        // engines busy, small enough that the colliding baseline degrades
        // by queueing rather than by unbounded time-sharing convoys.
        server_threads: 4,
    }
}

/// Load multiplier for the supernode pair experiments: their baseline
/// balances over a whole node (2 GPUs), so streams must be denser than the
/// single-collision-device experiments for bursts to overflow a node — the
/// statistical-multiplexing headroom the gPool exploits.
pub const PAIR_LOAD_FACTOR: f64 = 2.8;

/// The two streams of a workload pair: the Group A stream arrives at
/// NodeA, the Group B stream at NodeB (the paper's independent streams).
pub fn pair_streams(a: AppKind, b: AppKind, scale: &ExpScale) -> Vec<StreamSpec> {
    let load = scale.load * PAIR_LOAD_FACTOR;
    vec![
        normalized_stream(a, NodeId(0), TenantId(0), scale.requests, load),
        normalized_stream(b, NodeId(1), TenantId(1), scale.requests, load),
    ]
}

/// Mean completion time of a scenario, averaged over the scale's seeds.
pub fn mean_ct(base: &Scenario, scale: &ExpScale) -> f64 {
    sweep::mean_over_seeds(base, &scale.seeds, |s| s.mean_completion_ns())
}

/// The reference baseline of Figures 10/12/14/15: the *single-node GRR*
/// policy — GRR-Rain with each node balancing only its own GPUs.
pub fn single_node_grr_baseline(streams: Vec<StreamSpec>) -> Scenario {
    Scenario::supernode(StackConfig::rain(LbPolicy::Grr), streams, 0).with_scope(LbScope::Local)
}

/// The Figure 13 baseline: GRR with all four GPUs shared (GRR-Rain,
/// global scope).
pub fn shared_grr_baseline(streams: Vec<StreamSpec>) -> Scenario {
    Scenario::supernode(StackConfig::rain(LbPolicy::Grr), streams, 0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalized_load_discounts_slow_devices() {
        // HI is heavily slowed on a Quadro 2000: its normalized arrival
        // rate must drop accordingly.
        let hi = normalized_stream(AppKind::HI, NodeId(0), TenantId(0), 10, 1.0);
        let ga = normalized_stream(AppKind::GA, NodeId(0), TenantId(0), 10, 1.0);
        assert!(hi.load < ga.load);
        assert!(hi.load < 0.6, "HI must be strongly discounted: {}", hi.load);
        assert!(ga.load > 0.95, "GA is CPU-bound, barely discounted");
    }

    #[test]
    fn pair_streams_split_across_nodes() {
        let s = pair_streams(AppKind::DC, AppKind::MC, &ExpScale::quick());
        assert_eq!(s.len(), 2);
        assert_eq!(s[0].node, NodeId(0));
        assert_eq!(s[1].node, NodeId(1));
        assert_ne!(s[0].tenant, s[1].tenant);
    }

    #[test]
    fn scales() {
        assert!(ExpScale::quick().requests < ExpScale::full().requests);
        assert_eq!(ExpScale::quick().seeds.len(), 1);
    }
}
