//! Figure 15 — the Strings-specific feedback policies (DTF, MBF).
//!
//! DTF collocates contrasting data-transfer intensities so one
//! application's kernels overlap another's DMA; MBF keeps bandwidth-bound
//! applications apart so compute-bound kernels hide their memory latency.
//! Both exploit context packing + CUDA streams, so they only exist in
//! Strings. Speedups over the single-node GRR baseline, 24 pairs.
//!
//! Paper averages: DTF ≈ 3.73×, MBF ≈ 4.02× (8.06×/8.70× vs the bare CUDA
//! runtime); DTF peaks on compute-heavy × transfer-heavy pairs (DC/EV/HI/MM
//! × MC/SN), MBF on low-bandwidth × high-bandwidth pairs (EV/DC × BS/HI/MC).

use super::common::{mean_ct, pair_streams, single_node_grr_baseline, ExpScale};
use super::fig14::MIN_FEEDBACK;
use crate::scenario::Scenario;
use strings_core::config::StackConfig;
use strings_core::mapper::LbPolicy;
use strings_metrics::report::{fmt_speedup, Table};
use strings_workloads::pairs::{workload_pairs, PairLabel};
use strings_workloads::profile::AppKind;

/// The two policy columns.
pub fn policies() -> Vec<(String, StackConfig)> {
    vec![
        (
            "DTF-Strings".into(),
            StackConfig::strings(LbPolicy::GWtMin).with_feedback(LbPolicy::Dtf, MIN_FEEDBACK),
        ),
        (
            "MBF-Strings".into(),
            StackConfig::strings(LbPolicy::GWtMin).with_feedback(LbPolicy::Mbf, MIN_FEEDBACK),
        ),
    ]
}

/// One row of the figure.
#[derive(Debug, Clone)]
pub struct Row {
    /// Pair label.
    pub label: PairLabel,
    /// Group A application.
    pub a: AppKind,
    /// Group B application.
    pub b: AppKind,
    /// Per-policy speedups.
    pub speedups: Vec<(String, f64)>,
}

/// Figure 15 results.
#[derive(Debug, Clone)]
pub struct Results {
    /// One row per pair.
    pub rows: Vec<Row>,
    /// Per-policy averages.
    pub averages: Vec<(String, f64)>,
}

impl Results {
    /// Average for one policy label.
    pub fn average(&self, label: &str) -> Option<f64> {
        self.averages
            .iter()
            .find(|(l, _)| l == label)
            .map(|(_, s)| *s)
    }
}

/// Run over a subset of pairs.
pub fn run_pairs(scale: &ExpScale, pairs: &[(PairLabel, AppKind, AppKind)]) -> Results {
    let mut rows = Vec::new();
    for &(label, a, b) in pairs {
        let streams = pair_streams(a, b, scale);
        let base_ct = mean_ct(&single_node_grr_baseline(streams.clone()), scale);
        let mut speedups = Vec::new();
        for (plabel, cfg) in policies() {
            let s = Scenario::supernode(cfg, streams.clone(), 0);
            speedups.push((plabel, base_ct / mean_ct(&s, scale)));
        }
        rows.push(Row {
            label,
            a,
            b,
            speedups,
        });
    }
    let labels: Vec<String> = policies().into_iter().map(|(l, _)| l).collect();
    let averages = labels
        .iter()
        .map(|l| {
            let sum: f64 = rows
                .iter()
                .filter_map(|r| r.speedups.iter().find(|(pl, _)| pl == l))
                .map(|(_, s)| *s)
                .sum();
            (l.clone(), sum / rows.len() as f64)
        })
        .collect();
    Results { rows, averages }
}

/// Run over all 24 pairs.
pub fn run(scale: &ExpScale) -> Results {
    run_pairs(scale, &workload_pairs())
}

/// Render as the figure's data table.
pub fn table(r: &Results) -> Table {
    let mut header = vec!["pair".to_string(), "apps".to_string()];
    header.extend(r.averages.iter().map(|(l, _)| l.clone()));
    let mut t = Table::new(header);
    for row in &r.rows {
        let mut cells = vec![row.label.to_string(), format!("{}-{}", row.a, row.b)];
        cells.extend(row.speedups.iter().map(|(_, s)| fmt_speedup(*s)));
        t.row(cells);
    }
    let mut avg = vec!["AVG".to_string(), String::new()];
    avg.extend(r.averages.iter().map(|(_, s)| fmt_speedup(*s)));
    t.row(avg);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dtf_and_mbf_beat_the_baseline_on_their_sweet_spots() {
        let all = workload_pairs();
        // B = DC-MC (DTF's compute × transfer contrast),
        // R = HI-MC (MBF separates the two bandwidth-hungry apps).
        let subset = [all[1], all[17]];
        let r = run_pairs(&ExpScale::quick(), &subset);
        for (l, v) in &r.averages {
            assert!(*v > 1.0, "{l} must beat the single-node baseline: {v}");
        }
        assert_eq!(table(&r).len(), 3);
    }
}
