//! Extension — the policy matrix: rank scheduler stacks across workload
//! mixes and fault plans.
//!
//! The paper compares balancing policies one figure at a time (Figures
//! 9–13), always on the same workload. This experiment crosses the policy
//! zoo with the conditions instead: every policy *stack* (placement ×
//! mapper × admission) serves every workload mix under every fault plan,
//! and each cell of the matrix ranks the stacks by goodput, then tail
//! latency, then shed count. The interesting output is not any single
//! number but which stack wins *where* — feedback mappers need history
//! and shine on mixed loads, fragmentation-aware packing only pays off
//! on sliced devices, SLO admission trades completed requests for a
//! bounded tail.
//!
//! Rendered as one flat table (mix, faults, rank, stack, …) so the
//! golden gate pins the full ranking byte-for-byte.

use super::common::ExpScale;
use crate::serve::ServeSpec;
use remoting::topology::{SliceCapability, TopologySpec};
use sim_core::fault::FaultPlan;
use sim_core::SimDuration;
use strings_core::admission::SloAdmission;
use strings_core::config::StackConfig;
use strings_core::mapper::LbPolicy;
use strings_core::placement::NodePolicy;
use strings_metrics::report::{fmt_pct, Table};
use strings_metrics::slo::SloReport;
use strings_workloads::arrivals::ArrivalProcess;
use strings_workloads::profile::AppKind;

/// Offered arrival rate on the 4-GPU supernode (scaled to larger
/// clusters under a `--topology` override).
const RATE_RPS: f64 = 3.0;

/// Queue-wait target for the SLO-admission stack (the EWMA gate sheds
/// while a tenant's smoothed wait exceeds this).
const SLO_TARGET_NS: u64 = 250_000_000;

/// When the crash fault plan kills a backend (inside even the quick
/// scale's arrival window).
const CRASH_AT_NS: u64 = 3_000_000_000;

/// MIG-style slice grid on the sliced stack's devices (1g units).
const SLICE_UNITS: u8 = 8;

/// One competitor: a full scheduler stack across all three layers.
#[derive(Debug, Clone)]
pub struct PolicyStack {
    /// Display name, `placement/mapper[+admission]`.
    pub name: &'static str,
    /// Cluster placement policy (tenant → node).
    pub placement: NodePolicy,
    /// The interposed scheduler stack (mapper policy inside).
    pub stack: StackConfig,
    /// Partition devices into `SLICE_UNITS` slices for this stack.
    pub sliced: bool,
    /// Arm the SLO admission gate for this stack.
    pub slo: bool,
}

/// The competing stacks, in registry order. One row per *distinct
/// decision recipe*: the paper's baselines, a feedback mapper, the
/// fragmentation-aware mapper on sliced devices, and SLO admission.
pub fn stacks() -> Vec<PolicyStack> {
    vec![
        PolicyStack {
            name: "rr/GWtMin",
            placement: NodePolicy::RoundRobin,
            stack: StackConfig::strings(LbPolicy::GWtMin),
            sliced: false,
            slo: false,
        },
        PolicyStack {
            name: "hash/GMin",
            placement: NodePolicy::Hash,
            stack: StackConfig::rain(LbPolicy::GMin),
            sliced: false,
            slo: false,
        },
        PolicyStack {
            name: "least/MBF",
            placement: NodePolicy::LeastTenants,
            stack: StackConfig::strings(LbPolicy::GWtMin).with_feedback(LbPolicy::Mbf, 6),
            sliced: false,
            slo: false,
        },
        PolicyStack {
            name: "rr/Frag+mig8",
            placement: NodePolicy::RoundRobin,
            stack: StackConfig::strings(LbPolicy::Frag),
            sliced: true,
            slo: false,
        },
        PolicyStack {
            name: "rr/GWtMin+slo",
            placement: NodePolicy::RoundRobin,
            stack: StackConfig::strings(LbPolicy::GWtMin),
            sliced: false,
            slo: true,
        },
    ]
}

/// The workload mixes (tenant `t` serves `apps[t % len]`).
pub fn mixes() -> Vec<(&'static str, Vec<AppKind>)> {
    vec![
        ("uniform", vec![AppKind::GA]),
        ("mixed", vec![AppKind::GA, AppKind::MC]),
        ("heavy", vec![AppKind::MC, AppKind::HI]),
    ]
}

/// The fault plans each cell is rerun under.
pub fn fault_plans() -> Vec<(&'static str, FaultPlan)> {
    vec![
        ("none", FaultPlan::none()),
        ("crash@3s", FaultPlan::none().crash_at(CRASH_AT_NS, 1)),
    ]
}

/// One ranked cell entry: a stack's serving quality under one mix and
/// one fault plan.
#[derive(Debug, Clone)]
pub struct Outcome {
    /// Workload-mix label.
    pub mix: &'static str,
    /// Fault-plan label.
    pub faults: &'static str,
    /// 1-based rank within the (mix, faults) cell.
    pub rank: usize,
    /// Stack name.
    pub name: &'static str,
    /// The run's SLO summary.
    pub report: SloReport,
}

/// Policy-matrix results: every cell's ranking, flattened in mix-major,
/// fault-minor, rank order.
#[derive(Debug, Clone)]
pub struct Results {
    /// Ranked rows.
    pub rows: Vec<Outcome>,
}

fn spec(entry: &PolicyStack, apps: &[AppKind], plan: &FaultPlan, scale: &ExpScale) -> ServeSpec {
    let duration = SimDuration::from_secs(scale.requests.max(4) as u64);
    let base = scale
        .topology
        .clone()
        .unwrap_or_else(TopologySpec::supernode);
    let rate_rps = RATE_RPS * base.num_devices() as f64 / 4.0;
    let topo = if entry.sliced {
        base.with_slices(SliceCapability { units: SLICE_UNITS })
    } else {
        base
    };
    let mut s = ServeSpec::on(
        topo,
        entry.stack,
        ArrivalProcess::Poisson { rate_rps },
        duration,
        scale.seeds[0],
    );
    s.placement = entry.placement;
    s.tenants = s.topology.num_nodes().max(4);
    s.apps = apps.to_vec();
    s.admission.queue_depth = 8;
    // A small server pool so dispatch queues actually build under the
    // heavy mix — the queue-wait signal the SLO gate consumes.
    s.server_threads = 2;
    if entry.slo {
        s.admission.slo = Some(SloAdmission {
            target_wait_ns: SLO_TARGET_NS,
        });
    }
    s.faults = plan.clone();
    for ev in scale.faults.events() {
        s.faults.push(ev.at, ev.kind);
    }
    s
}

/// Run the full matrix: stacks × mixes × fault plans, one seeded serve
/// run per cell entry, ranked within each cell by goodput (desc), then
/// p99 (asc), then shed count (asc), then name.
pub fn run(scale: &ExpScale) -> Results {
    let mut rows = Vec::new();
    for (mix, apps) in mixes() {
        for (faults, plan) in fault_plans() {
            let mut cell: Vec<Outcome> = stacks()
                .iter()
                .map(|entry| {
                    let s = spec(entry, &apps, &plan, scale);
                    let report = s.slo(&s.run());
                    Outcome {
                        mix,
                        faults,
                        rank: 0,
                        name: entry.name,
                        report,
                    }
                })
                .collect();
            cell.sort_by(|a, b| {
                b.report
                    .goodput_rps
                    .partial_cmp(&a.report.goodput_rps)
                    .expect("goodput is finite")
                    .then(a.report.p99.as_ns().cmp(&b.report.p99.as_ns()))
                    .then(a.report.shed.cmp(&b.report.shed))
                    .then(a.name.cmp(b.name))
            });
            for (i, o) in cell.iter_mut().enumerate() {
                o.rank = i + 1;
            }
            rows.extend(cell);
        }
    }
    Results { rows }
}

/// Render the matrix as one flat ranking table.
pub fn table(r: &Results) -> Table {
    let mut t = Table::new(vec![
        "mix",
        "faults",
        "rank",
        "stack",
        "goodput",
        "shed",
        "p99",
        "fairness_min",
    ]);
    for o in &r.rows {
        t.row(vec![
            o.mix.to_string(),
            o.faults.to_string(),
            o.rank.to_string(),
            o.name.to_string(),
            format!("{:.2} req/s", o.report.goodput_rps),
            fmt_pct(o.report.shed_rate),
            o.report.p99.to_string(),
            format!("{:.4}", o.report.fairness_window_min),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_covers_stacks_by_mixes_by_faults() {
        let r = run(&ExpScale::quick());
        let n_stacks = stacks().len();
        assert!(n_stacks >= 4, "the issue wants at least 4 ranked policies");
        assert_eq!(r.rows.len(), n_stacks * mixes().len() * fault_plans().len());
        // Every cell ranks 1..=n with no gaps.
        for (mix, _) in mixes() {
            for (faults, _) in fault_plans() {
                let mut ranks: Vec<usize> = r
                    .rows
                    .iter()
                    .filter(|o| o.mix == mix && o.faults == faults)
                    .map(|o| o.rank)
                    .collect();
                ranks.sort_unstable();
                assert_eq!(ranks, (1..=n_stacks).collect::<Vec<_>>());
            }
        }
    }

    #[test]
    fn ranking_is_deterministic_across_reruns() {
        let a = table(&run(&ExpScale::quick())).render();
        let b = table(&run(&ExpScale::quick())).render();
        assert_eq!(a, b, "policy matrix must be byte-stable");
        assert!(a.contains("rr/Frag+mig8"));
        assert!(a.contains("crash@3s"));
    }

    #[test]
    fn every_stack_completes_work_in_the_faultless_cells() {
        let r = run(&ExpScale::quick());
        for o in r.rows.iter().filter(|o| o.faults == "none") {
            assert!(
                o.report.completed > 0,
                "{} completed nothing on {}",
                o.name,
                o.mix
            );
        }
    }
}
