//! Figure 1 — compute and memory characteristics of the cloud applications.
//!
//! Each application receives an exponential request stream on a dedicated
//! reference GPU; we report the time-averaged compute (SM occupancy) and
//! memory (bandwidth) utilization, classified into the paper's heat bands:
//! heavily utilized (red, > 90 %), moderate (yellow), under-utilized
//! (green, < 10 %). The paper's observation — frequent idle intervals even
//! for efficient codes like Monte Carlo, and wide diversity across apps —
//! should be visible in the numbers.

use super::common::{normalized_stream, ExpScale};
use crate::scenario::Scenario;
use gpu_sim::spec::GpuModel;
use remoting::gpool::{NodeId, NodeSpec};
use remoting::topology::TopologySpec;
use sim_core::telemetry::combined_busy_fraction;
use strings_core::config::StackConfig;
use strings_core::device_sched::TenantId;
use strings_metrics::report::{fmt_pct, Table};
use strings_workloads::profile::AppKind;

/// Utilization heat band.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Band {
    /// > 90 % — "red".
    Heavy,
    /// 10–90 % — "yellow".
    Moderate,
    /// < 10 % — "green".
    Under,
}

impl Band {
    /// Classify a utilization fraction.
    pub fn of(util: f64) -> Band {
        if util > 0.9 {
            Band::Heavy
        } else if util < 0.1 {
            Band::Under
        } else {
            Band::Moderate
        }
    }

    /// Figure colour name.
    pub fn label(self) -> &'static str {
        match self {
            Band::Heavy => "red",
            Band::Moderate => "yellow",
            Band::Under => "green",
        }
    }
}

/// One application's measured characteristics. Utilizations are
/// *conditional on the device being active* (the paper classifies how
/// heavily an application uses compute/memory when it runs, with the idle
/// intervals reported separately).
#[derive(Debug, Clone)]
pub struct Row {
    /// Application.
    pub app: AppKind,
    /// Compute-engine utilization while the device is active.
    pub compute_util: f64,
    /// Memory-system pressure while active: DRAM bandwidth or DMA traffic.
    pub memory_util: f64,
    /// Idle gaps of ≥ 50 ms observed over the run.
    pub idle_gaps: usize,
}

/// Figure 1 results.
#[derive(Debug, Clone)]
pub struct Results {
    /// One row per application.
    pub rows: Vec<Row>,
}

/// Run the characterization.
pub fn run(scale: &ExpScale) -> Results {
    let node = NodeSpec::new(0, vec![GpuModel::TeslaC2050]);
    let mut rows = Vec::new();
    for app in AppKind::ALL {
        let stream = normalized_stream(app, NodeId(0), TenantId(0), scale.requests, scale.load);
        let mut scen =
            Scenario::single_node(StackConfig::cuda_runtime(), vec![stream], scale.seeds[0]);
        scen.topology = TopologySpec::of_nodes(vec![node.clone()]);
        let stats = scen.run();
        let t = &stats.device_telemetry[0];
        let end = stats.makespan_ns.max(1);
        let active_ns =
            (combined_busy_fraction(&[&t.compute, &t.copy], 0, end) * end as f64).max(1.0);
        let compute_busy = t.compute.busy_ns(0, end) as f64;
        // Occupancy while kernels run (not diluted by idle time).
        let cond_occ = if compute_busy > 0.0 {
            t.compute.mean_over(0, end) * end as f64 / compute_busy
        } else {
            0.0
        };
        let bw_pressure = t.bandwidth.mean_over(0, end) * end as f64 / active_ns;
        let dma_pressure = t.copy.busy_ns(0, end) as f64 / active_ns;
        rows.push(Row {
            app,
            compute_util: (compute_busy / active_ns) * cond_occ,
            memory_util: bw_pressure.max(dma_pressure).min(1.0),
            idle_gaps: t.compute.idle_gaps(0, end, 50_000_000),
        });
    }
    Results { rows }
}

/// Render as the figure's data table.
pub fn table(r: &Results) -> Table {
    let mut t = Table::new(vec![
        "app",
        "compute",
        "band",
        "memory",
        "band",
        "idle gaps",
    ]);
    for row in &r.rows {
        t.row(vec![
            row.app.to_string(),
            fmt_pct(row.compute_util),
            Band::of(row.compute_util).label().to_string(),
            fmt_pct(row.memory_util),
            Band::of(row.memory_util).label().to_string(),
            row.idle_gaps.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bands_classify() {
        assert_eq!(Band::of(0.95), Band::Heavy);
        assert_eq!(Band::of(0.5), Band::Moderate);
        assert_eq!(Band::of(0.05), Band::Under);
        assert_eq!(Band::Heavy.label(), "red");
    }

    #[test]
    fn characterization_matches_paper_classes() {
        let r = run(&ExpScale::quick());
        assert_eq!(r.rows.len(), 10);
        let get = |k: AppKind| r.rows.iter().find(|row| row.app == k).unwrap();
        // Gaussian barely touches the GPU at all.
        assert!(get(AppKind::GA).compute_util < 0.2);
        assert!(get(AppKind::GA).memory_util < 0.2);
        // DXTC is compute-heavy but memory-light (paper: compute red).
        assert!(get(AppKind::DC).compute_util > 0.7);
        assert!(get(AppKind::DC).memory_util < 0.2);
        // Monte Carlo is memory/transfer intensive (paper: memory red).
        assert!(get(AppKind::MC).memory_util > 0.8);
        // Histogram pressures DRAM heavily while its kernels run.
        assert!(get(AppKind::HI).memory_util > 0.5);
        // Idle intervals occur even for the efficient Monte Carlo.
        assert!(get(AppKind::MC).idle_gaps > 0, "MC should show idle gaps");
    }
}
