//! Figure 10 — benefits of GPU sharing on the emulated 4-GPU supernode.
//!
//! The 24 A–X workload pairs: the long-running stream arrives at NodeA, the
//! short-running stream at NodeB; the balancer may place work on any of the
//! four GPUs. Speedups are relative to the *single-node GRR* policy
//! (GRR-Rain, per-node balancing) — "over and above" Figure 9's gains.
//!
//! Paper averages: GRR/GMin/GWtMin-Rain ≈ 1.60/1.80/1.82×,
//! GRR/GMin/GWtMin-Strings ≈ 2.64/2.69/2.88×; peak speedups on pairs
//! containing BlackScholes or Gaussian (I, K, W).

use super::common::{mean_ct, pair_streams, single_node_grr_baseline, ExpScale};
use crate::scenario::Scenario;
use strings_core::config::StackConfig;
use strings_metrics::report::{fmt_speedup, Table};
use strings_workloads::pairs::{workload_pairs, PairLabel};
use strings_workloads::profile::AppKind;

/// The six policy columns.
pub fn policies() -> Vec<(String, StackConfig)> {
    super::fig09::policies()
}

/// One row: a workload pair and its per-policy speedups.
#[derive(Debug, Clone)]
pub struct Row {
    /// Pair label A–X.
    pub label: PairLabel,
    /// Group A application.
    pub a: AppKind,
    /// Group B application.
    pub b: AppKind,
    /// (policy, speedup over single-node GRR).
    pub speedups: Vec<(String, f64)>,
}

/// Figure 10 results.
#[derive(Debug, Clone)]
pub struct Results {
    /// One row per pair.
    pub rows: Vec<Row>,
    /// Per-policy averages over the 24 pairs.
    pub averages: Vec<(String, f64)>,
}

impl Results {
    /// Average for one policy label.
    pub fn average(&self, label: &str) -> Option<f64> {
        self.averages
            .iter()
            .find(|(l, _)| l == label)
            .map(|(_, s)| *s)
    }
}

/// Run the experiment over `pairs` (all 24 at full scale; a subset for
/// quick runs).
pub fn run_pairs(scale: &ExpScale, pairs: &[(PairLabel, AppKind, AppKind)]) -> Results {
    let mut rows = Vec::new();
    for &(label, a, b) in pairs {
        let streams = pair_streams(a, b, scale);
        let base_ct = mean_ct(&single_node_grr_baseline(streams.clone()), scale);
        let mut speedups = Vec::new();
        for (plabel, cfg) in policies() {
            let s = Scenario::supernode(cfg, streams.clone(), 0);
            speedups.push((plabel, base_ct / mean_ct(&s, scale)));
        }
        rows.push(Row {
            label,
            a,
            b,
            speedups,
        });
    }
    let labels: Vec<String> = policies().into_iter().map(|(l, _)| l).collect();
    let averages = labels
        .iter()
        .map(|label| {
            let sum: f64 = rows
                .iter()
                .filter_map(|r| r.speedups.iter().find(|(l, _)| l == label))
                .map(|(_, s)| *s)
                .sum();
            (label.clone(), sum / rows.len() as f64)
        })
        .collect();
    Results { rows, averages }
}

/// Run over all 24 pairs.
pub fn run(scale: &ExpScale) -> Results {
    run_pairs(scale, &workload_pairs())
}

/// Render as the figure's data table.
pub fn table(r: &Results) -> Table {
    let mut header = vec!["pair".to_string(), "apps".to_string()];
    header.extend(r.averages.iter().map(|(l, _)| l.clone()));
    let mut t = Table::new(header);
    for row in &r.rows {
        let mut cells = vec![row.label.to_string(), format!("{}-{}", row.a, row.b)];
        cells.extend(row.speedups.iter().map(|(_, s)| fmt_speedup(*s)));
        t.row(cells);
    }
    let mut avg = vec!["AVG".to_string(), String::new()];
    avg.extend(r.averages.iter().map(|(_, s)| fmt_speedup(*s)));
    t.row(avg);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_subset_shows_pooling_and_packing_gains() {
        // Three representative pairs: B (DC-MC), I (BO-BS), X (EV-SN).
        let all = workload_pairs();
        let subset = [all[1], all[8], all[23]];
        let r = run_pairs(&ExpScale::quick(), &subset);
        assert_eq!(r.rows.len(), 3);
        for (label, avg) in &r.averages {
            assert!(*avg > 0.8, "{label}: pooling should not lose badly: {avg}");
        }
        // Strings-GWtMin must beat Rain-GRR on average.
        let rain = r.average("GRR-Rain").unwrap();
        let strings = r.average("GWtMin-Strings").unwrap();
        assert!(strings > rain, "strings {strings} !> rain {rain}");
        assert_eq!(table(&r).len(), 4);
    }
}
