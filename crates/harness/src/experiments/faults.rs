//! Extension — fault isolation across backend designs (paper §III.B.1).
//!
//! The paper motivates Design III with fault isolation: Design I isolates
//! every application in its own backend process; Design II's single master
//! thread means "if the master thread managing all requests to a particular
//! GPU crashes, all frontend applications relying on it are affected";
//! Design III localizes faults to individual backend threads.
//!
//! This experiment injects one backend crash on a busy device and measures
//! the blast radius (requests killed) under each design. Design III's
//! siblings survive the crash via failover replay, so they show up in the
//! `retried` column instead of the `killed` one.

use super::common::ExpScale;
use crate::scenario::{Scenario, StreamSpec};
use gpu_sim::spec::GpuModel;
use remoting::backend::BackendDesign;
use remoting::gpool::{NodeId, NodeSpec};
use remoting::topology::TopologySpec;
use sim_core::fault::FaultPlan;
use strings_core::config::StackConfig;
use strings_core::device_sched::TenantId;
use strings_core::mapper::LbPolicy;
use strings_metrics::report::Table;
use strings_workloads::profile::AppKind;

/// When the backend crashes (10 s in — well into the backlog).
const FAULT_AT_NS: u64 = 10_000_000_000;

/// One design's blast radius.
#[derive(Debug, Clone)]
pub struct Outcome {
    /// Design label.
    pub label: &'static str,
    /// Requests killed by the single fault.
    pub failed: u64,
    /// Requests that still completed.
    pub completed: u64,
    /// Requests that completed only after a failover replay.
    pub retried: u64,
    /// Total virtual time requests spent waiting out failovers, ns.
    pub downtime_ns: u64,
}

/// Fault-isolation results.
#[derive(Debug, Clone)]
pub struct Results {
    /// One outcome per backend design.
    pub outcomes: Vec<Outcome>,
}

fn measure(design_cfg: StackConfig, label: &'static str, scale: &ExpScale) -> Outcome {
    // One GPU so every request shares the faulting backend.
    let node = NodeSpec::new(0, vec![GpuModel::TeslaC2050]);
    let stream = StreamSpec {
        app: AppKind::MC,
        node: NodeId(0),
        tenant: TenantId(0),
        weight: 1.0,
        count: scale.requests.max(10),
        load: 4.0,
        server_threads: 8,
    };
    let mut scen = Scenario::single_node(design_cfg, vec![stream], 17);
    scen.topology = TopologySpec::of_nodes(vec![node]);
    scen.faults = FaultPlan::none().crash_at(FAULT_AT_NS, 0);
    for ev in scale.faults.events() {
        scen.faults.push(ev.at, ev.kind);
    }
    let stats = scen.run();
    let totals = stats.disruption_report().totals();
    Outcome {
        label,
        failed: stats.failed_requests,
        completed: stats.completed_requests - stats.failed_requests,
        retried: totals.retried,
        downtime_ns: totals.downtime_ns,
    }
}

/// Run all three designs.
pub fn run(scale: &ExpScale) -> Results {
    let design2 = {
        let mut c = StackConfig::strings(LbPolicy::GMin);
        c.design = BackendDesign::SingleMaster;
        c.packer.sync_to_stream = false;
        c
    };
    Results {
        outcomes: vec![
            measure(
                StackConfig::rain(LbPolicy::GMin),
                "design-I (per-app process)",
                scale,
            ),
            measure(design2, "design-II (single master)", scale),
            measure(
                StackConfig::strings(LbPolicy::GMin),
                "design-III (per-GPU threads)",
                scale,
            ),
        ],
    }
}

/// Render as a table.
pub fn table(r: &Results) -> Table {
    let mut t = Table::new(vec![
        "backend design",
        "requests killed",
        "requests completed",
        "requests retried",
        "downtime_ms",
    ]);
    for o in &r.outcomes {
        t.row(vec![
            o.label.to_string(),
            o.failed.to_string(),
            o.completed.to_string(),
            o.retried.to_string(),
            format!("{:.3}", o.downtime_ns as f64 / 1e6),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blast_radius_matches_paper_claims() {
        let r = run(&ExpScale::quick());
        let get = |prefix: &str| {
            r.outcomes
                .iter()
                .find(|o| o.label.starts_with(prefix))
                .unwrap()
        };
        let d1 = get("design-I ");
        let d2 = get("design-II ");
        let d3 = get("design-III");
        // Designs I and III localize the fault to one application.
        assert_eq!(d1.failed, 1, "design I kills exactly the faulty app");
        assert_eq!(d3.failed, 1, "design III localizes to one thread");
        // Design II takes down every application on the device.
        assert!(
            d2.failed > d3.failed,
            "design II blast radius {} must exceed design III's {}",
            d2.failed,
            d3.failed
        );
        // Design III's sibling applications survive via failover replay;
        // design II has no survivors to retry.
        assert!(d3.retried > 0, "design III siblings must replay");
        assert_eq!(d2.retried, 0, "design II leaves nothing to retry");
        assert!(d3.downtime_ns > 0, "failover replay costs downtime");
        // The system keeps serving after the fault in every design.
        for o in &r.outcomes {
            assert!(o.completed > 0, "{} completed nothing", o.label);
        }
    }
}
