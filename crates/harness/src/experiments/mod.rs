//! Experiment definitions — one module per paper figure/table.
//!
//! Each module exposes `run(&ExpScale) -> Results` plus a `table(&Results)`
//! renderer; the regeneration binaries in `strings-bench` print the tables,
//! and the Criterion benches call `run` at [`common::ExpScale::quick`]
//! scale. EXPERIMENTS.md records paper-vs-measured values for each.

pub mod ablation;
pub mod attribution;
pub mod common;
pub mod cpu_fallback;
pub mod faults;
pub mod fig01;
pub mod fig02;
pub mod fig09;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig15;
pub mod policy_matrix;
pub mod serve;
pub mod table1;
pub mod vmem;

pub use common::ExpScale;
