//! Extension — open-loop cloud serving with SLO reporting.
//!
//! The paper's evaluation offers CloudBench-style load — "heavy traffic
//! from millions of users" — but reports batch metrics. This experiment
//! runs the supernode as a long-lived service instead: a seeded Poisson
//! arrival process offers multi-tenant requests for a fixed duration
//! through the admission front door, and each scheduler stack is judged
//! on its [`SloReport`] — tail latency percentiles, goodput, shed rate,
//! and windowed per-tenant fairness — rather than makespan.
//!
//! The bare CUDA runtime collides every request on one device per node,
//! so it saturates first and sheds hardest; the interposed stacks spread
//! the same offered load over the gPool and keep both the tail and the
//! shed rate down.

use super::common::ExpScale;
use crate::serve::ServeSpec;
use sim_core::SimDuration;
use strings_core::config::StackConfig;
use strings_core::mapper::LbPolicy;
use strings_metrics::report::{fmt_pct, Table};
use strings_metrics::slo::SloReport;
use strings_workloads::arrivals::ArrivalProcess;

/// Offered arrival rate (requests/s across all tenants).
const RATE_RPS: f64 = 3.0;

/// One stack's serving quality.
#[derive(Debug, Clone)]
pub struct Outcome {
    /// Stack label.
    pub label: String,
    /// The run's SLO summary.
    pub report: SloReport,
}

/// Serve-mode results, one outcome per scheduler stack.
#[derive(Debug, Clone)]
pub struct Results {
    /// Per-stack outcomes, in comparison order.
    pub outcomes: Vec<Outcome>,
}

/// The shared serving scenario: the supernode under Poisson load, 4
/// tenants, bounded per-tenant queues. `requests` in the scale sets the
/// arrival window in seconds (quick = 8 s, full = 30 s). A `--topology`
/// override swaps the cluster in and scales the offered rate and tenant
/// count with it (the canned rate targets the 4-GPU supernode).
fn spec(stack: StackConfig, scale: &ExpScale) -> ServeSpec {
    let duration = SimDuration::from_secs(scale.requests.max(4) as u64);
    let mut s = match &scale.topology {
        None => ServeSpec::supernode(
            stack,
            ArrivalProcess::Poisson { rate_rps: RATE_RPS },
            duration,
            scale.seeds[0],
        ),
        Some(topo) => {
            let rate_rps = RATE_RPS * topo.num_devices() as f64 / 4.0;
            let mut s = ServeSpec::on(
                topo.clone(),
                stack,
                ArrivalProcess::Poisson { rate_rps },
                duration,
                scale.seeds[0],
            );
            s.tenants = topo.num_nodes().max(4);
            s
        }
    };
    s.admission.queue_depth = 8;
    s.faults = scale.faults.clone();
    s
}

/// Run the comparison: one serve run per stack at the scale's first seed
/// (percentiles are per-run distributions; they are reported from one
/// representative seeded run, not averaged).
pub fn run(scale: &ExpScale) -> Results {
    let stacks = vec![
        ("CUDA".to_string(), StackConfig::cuda_runtime()),
        ("GMin-Rain".to_string(), StackConfig::rain(LbPolicy::GMin)),
        (
            "GWtMin-Strings".to_string(),
            StackConfig::strings(LbPolicy::GWtMin),
        ),
    ];
    let outcomes = stacks
        .into_iter()
        .map(|(label, stack)| {
            let s = spec(stack, scale);
            let report = s.slo(&s.run());
            Outcome { label, report }
        })
        .collect();
    Results { outcomes }
}

/// Render as a table (one row per stack).
pub fn table(r: &Results) -> Table {
    let mut t = Table::new(vec![
        "stack",
        "goodput",
        "shed",
        "p50",
        "p95",
        "p99",
        "fairness_min",
    ]);
    for o in &r.outcomes {
        t.row(vec![
            o.label.clone(),
            format!("{:.2} req/s", o.report.goodput_rps),
            fmt_pct(o.report.shed_rate),
            o.report.p50.to_string(),
            o.report.p95.to_string(),
            o.report.p99.to_string(),
            format!("{:.4}", o.report.fairness_window_min),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serve_comparison_runs_and_renders() {
        let r = run(&ExpScale::quick());
        assert_eq!(r.outcomes.len(), 3);
        for o in &r.outcomes {
            assert!(o.report.completed > 0, "{}: no requests completed", o.label);
        }
        let rendered = table(&r).render();
        assert!(rendered.contains("GWtMin-Strings"));
        assert!(rendered.contains("req/s"));
    }

    #[test]
    fn interposed_stacks_shed_no_more_than_bare_cuda() {
        let r = run(&ExpScale::quick());
        let shed = |label: &str| {
            r.outcomes
                .iter()
                .find(|o| o.label == label)
                .expect("stack present")
                .report
                .shed_rate
        };
        assert!(
            shed("GWtMin-Strings") <= shed("CUDA") + 1e-9,
            "strings {} vs cuda {}",
            shed("GWtMin-Strings"),
            shed("CUDA")
        );
    }
}
