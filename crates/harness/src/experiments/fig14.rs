//! Figure 14 — feedback-based load balancing (RTF, GUF).
//!
//! The Policy Arbiter starts every run on GWtMin and switches to the
//! feedback policy once the SFT has collected enough records. Speedups are
//! over the single-node GRR baseline, 24 pairs on the supernode.
//!
//! Paper averages: RTF-Rain ≈ 2.22×, GUF-Rain ≈ 2.51×, RTF-Strings ≈
//! 3.23×, GUF-Strings ≈ 3.96×; GUF shines when pairing high-GPU-utilization
//! (DC, HI, MM, BO) with low-utilization (GA, SN, BS) applications.

use super::common::{mean_ct, pair_streams, single_node_grr_baseline, ExpScale};
use crate::scenario::Scenario;
use strings_core::config::StackConfig;
use strings_core::mapper::LbPolicy;
use strings_metrics::report::{fmt_speedup, Table};
use strings_workloads::pairs::{workload_pairs, PairLabel};
use strings_workloads::profile::AppKind;

/// Feedback records required before the arbiter switches policies.
pub const MIN_FEEDBACK: u64 = 6;

/// The four policy columns.
pub fn policies() -> Vec<(String, StackConfig)> {
    vec![
        (
            "RTF-Rain".into(),
            StackConfig::rain(LbPolicy::GWtMin).with_feedback(LbPolicy::Rtf, MIN_FEEDBACK),
        ),
        (
            "GUF-Rain".into(),
            StackConfig::rain(LbPolicy::GWtMin).with_feedback(LbPolicy::Guf, MIN_FEEDBACK),
        ),
        (
            "RTF-Strings".into(),
            StackConfig::strings(LbPolicy::GWtMin).with_feedback(LbPolicy::Rtf, MIN_FEEDBACK),
        ),
        (
            "GUF-Strings".into(),
            StackConfig::strings(LbPolicy::GWtMin).with_feedback(LbPolicy::Guf, MIN_FEEDBACK),
        ),
    ]
}

/// One row of the figure.
#[derive(Debug, Clone)]
pub struct Row {
    /// Pair label.
    pub label: PairLabel,
    /// Group A application.
    pub a: AppKind,
    /// Group B application.
    pub b: AppKind,
    /// Per-policy speedups.
    pub speedups: Vec<(String, f64)>,
}

/// Figure 14 results.
#[derive(Debug, Clone)]
pub struct Results {
    /// One row per pair.
    pub rows: Vec<Row>,
    /// Per-policy averages.
    pub averages: Vec<(String, f64)>,
}

impl Results {
    /// Average for one policy label.
    pub fn average(&self, label: &str) -> Option<f64> {
        self.averages
            .iter()
            .find(|(l, _)| l == label)
            .map(|(_, s)| *s)
    }
}

/// Run over a subset of pairs.
pub fn run_pairs(scale: &ExpScale, pairs: &[(PairLabel, AppKind, AppKind)]) -> Results {
    let mut rows = Vec::new();
    for &(label, a, b) in pairs {
        let streams = pair_streams(a, b, scale);
        let base_ct = mean_ct(&single_node_grr_baseline(streams.clone()), scale);
        let mut speedups = Vec::new();
        for (plabel, cfg) in policies() {
            let s = Scenario::supernode(cfg, streams.clone(), 0);
            speedups.push((plabel, base_ct / mean_ct(&s, scale)));
        }
        rows.push(Row {
            label,
            a,
            b,
            speedups,
        });
    }
    let labels: Vec<String> = policies().into_iter().map(|(l, _)| l).collect();
    let averages = labels
        .iter()
        .map(|l| {
            let sum: f64 = rows
                .iter()
                .filter_map(|r| r.speedups.iter().find(|(pl, _)| pl == l))
                .map(|(_, s)| *s)
                .sum();
            (l.clone(), sum / rows.len() as f64)
        })
        .collect();
    Results { rows, averages }
}

/// Run over all 24 pairs.
pub fn run(scale: &ExpScale) -> Results {
    run_pairs(scale, &workload_pairs())
}

/// Render as the figure's data table.
pub fn table(r: &Results) -> Table {
    let mut header = vec!["pair".to_string(), "apps".to_string()];
    header.extend(r.averages.iter().map(|(l, _)| l.clone()));
    let mut t = Table::new(header);
    for row in &r.rows {
        let mut cells = vec![row.label.to_string(), format!("{}-{}", row.a, row.b)];
        cells.extend(row.speedups.iter().map(|(_, s)| fmt_speedup(*s)));
        t.row(cells);
    }
    let mut avg = vec!["AVG".to_string(), String::new()];
    avg.extend(r.averages.iter().map(|(_, s)| fmt_speedup(*s)));
    t.row(avg);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn feedback_strings_beats_feedback_rain() {
        let all = workload_pairs();
        // K = BO-GA: high-utilization BO with tiny GA, GUF's sweet spot.
        let subset = [all[10], all[1]];
        let r = run_pairs(&ExpScale::quick(), &subset);
        let guf_rain = r.average("GUF-Rain").unwrap();
        let guf_strings = r.average("GUF-Strings").unwrap();
        assert!(
            guf_strings > guf_rain * 0.95,
            "GUF-Strings {guf_strings} must not lose to GUF-Rain {guf_rain}"
        );
        for (l, v) in &r.averages {
            assert!(*v > 0.7, "{l} collapsed: {v}");
        }
    }
}
