//! Figure 12 — throughput-oriented GPU scheduling (LAS, PS).
//!
//! The best workload-balancing policy from Figure 10 (GWtMin) combined with
//! the device-level schedulers, on the supernode over the 24 pairs,
//! relative to the single-node GRR baseline.
//!
//! Paper averages: GWtMin+LAS-Rain ≈ 2.18×, GWtMin+LAS-Strings ≈ 3.10×,
//! GWtMin+PS-Strings ≈ 2.97× (PS within ~4 % of LAS but fairer; both
//! Strings variants far ahead of LAS-Rain).

use super::common::{mean_ct, pair_streams, single_node_grr_baseline, ExpScale};
use crate::scenario::Scenario;
use strings_core::config::StackConfig;
use strings_core::device_sched::GpuPolicy;
use strings_core::mapper::LbPolicy;
use strings_metrics::report::{fmt_speedup, Table};
use strings_workloads::pairs::{workload_pairs, PairLabel};
use strings_workloads::profile::AppKind;

/// The three policy columns.
pub fn policies() -> Vec<(String, StackConfig)> {
    vec![
        (
            "GWtMinLAS-Rain".into(),
            StackConfig::rain(LbPolicy::GWtMin).with_gpu_policy(GpuPolicy::Las),
        ),
        (
            "GWtMinLAS-Strings".into(),
            StackConfig::strings(LbPolicy::GWtMin).with_gpu_policy(GpuPolicy::Las),
        ),
        (
            "GWtMinPS-Strings".into(),
            StackConfig::strings(LbPolicy::GWtMin).with_gpu_policy(GpuPolicy::Ps),
        ),
    ]
}

/// One row of the figure.
#[derive(Debug, Clone)]
pub struct Row {
    /// Pair label.
    pub label: PairLabel,
    /// Group A / Group B applications.
    pub a: AppKind,
    /// Group B application.
    pub b: AppKind,
    /// Per-policy speedups over single-node GRR.
    pub speedups: Vec<(String, f64)>,
}

/// Figure 12 results.
#[derive(Debug, Clone)]
pub struct Results {
    /// One row per pair.
    pub rows: Vec<Row>,
    /// Per-policy averages.
    pub averages: Vec<(String, f64)>,
}

impl Results {
    /// Average for one policy label.
    pub fn average(&self, label: &str) -> Option<f64> {
        self.averages
            .iter()
            .find(|(l, _)| l == label)
            .map(|(_, s)| *s)
    }
}

/// Run over a subset of pairs.
pub fn run_pairs(scale: &ExpScale, pairs: &[(PairLabel, AppKind, AppKind)]) -> Results {
    let mut rows = Vec::new();
    for &(label, a, b) in pairs {
        let streams = pair_streams(a, b, scale);
        let base_ct = mean_ct(&single_node_grr_baseline(streams.clone()), scale);
        let mut speedups = Vec::new();
        for (plabel, cfg) in policies() {
            let s = Scenario::supernode(cfg, streams.clone(), 0);
            speedups.push((plabel, base_ct / mean_ct(&s, scale)));
        }
        rows.push(Row {
            label,
            a,
            b,
            speedups,
        });
    }
    let labels: Vec<String> = policies().into_iter().map(|(l, _)| l).collect();
    let averages = labels
        .iter()
        .map(|label| {
            let sum: f64 = rows
                .iter()
                .filter_map(|r| r.speedups.iter().find(|(l, _)| l == label))
                .map(|(_, s)| *s)
                .sum();
            (label.clone(), sum / rows.len() as f64)
        })
        .collect();
    Results { rows, averages }
}

/// Run over all 24 pairs.
pub fn run(scale: &ExpScale) -> Results {
    run_pairs(scale, &workload_pairs())
}

/// Render as the figure's data table.
pub fn table(r: &Results) -> Table {
    let mut header = vec!["pair".to_string(), "apps".to_string()];
    header.extend(r.averages.iter().map(|(l, _)| l.clone()));
    let mut t = Table::new(header);
    for row in &r.rows {
        let mut cells = vec![row.label.to_string(), format!("{}-{}", row.a, row.b)];
        cells.extend(row.speedups.iter().map(|(_, s)| fmt_speedup(*s)));
        t.row(cells);
    }
    let mut avg = vec!["AVG".to_string(), String::new()];
    avg.extend(r.averages.iter().map(|(_, s)| fmt_speedup(*s)));
    t.row(avg);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_schedulers_beat_las_rain() {
        let all = workload_pairs();
        let subset = [all[1], all[8]];
        let r = run_pairs(&ExpScale::quick(), &subset);
        let rain = r.average("GWtMinLAS-Rain").unwrap();
        let las = r.average("GWtMinLAS-Strings").unwrap();
        let ps = r.average("GWtMinPS-Strings").unwrap();
        assert!(las > rain, "LAS-Strings {las} !> LAS-Rain {rain}");
        assert!(ps > rain, "PS-Strings {ps} !> LAS-Rain {rain}");
        // PS trails LAS by a small margin at most (paper: ~4%).
        assert!(ps > las * 0.75, "PS {ps} too far behind LAS {las}");
    }
}
