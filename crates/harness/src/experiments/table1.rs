//! Table I — measured application characteristics.
//!
//! Each benchmark runs one request, alone, on the reference device (Tesla
//! C2050) under the bare runtime; we report what the paper's table reports:
//! GPU time as % of runtime, data transfer as % of GPU time, and
//! approximate memory bandwidth (bytes moved / GPU time — the same
//! approximation the MBF policy uses). The measured values should
//! reproduce the input profile, closing the loop on the trace generator.

use crate::scenario::{Scenario, StreamSpec};
use gpu_sim::spec::GpuModel;
use remoting::gpool::{NodeId, NodeSpec};
use remoting::topology::TopologySpec;
use strings_core::config::StackConfig;
use strings_core::device_sched::TenantId;
use strings_metrics::report::Table;
use strings_workloads::profile::AppKind;

/// One measured row.
#[derive(Debug, Clone)]
pub struct Row {
    /// Application.
    pub app: AppKind,
    /// Measured runtime, seconds.
    pub runtime_s: f64,
    /// Measured GPU time as a percentage of runtime.
    pub gpu_time_pct: f64,
    /// Measured transfer time as a percentage of GPU time.
    pub transfer_pct: f64,
    /// Approximate memory bandwidth, MB/s (bytes moved over GPU time).
    pub mem_bw_mbps: f64,
    /// The profile's Table I reference values (gpu %, transfer %).
    pub expected: (f64, f64),
}

/// Table I results.
#[derive(Debug, Clone)]
pub struct Results {
    /// One row per application.
    pub rows: Vec<Row>,
}

/// Run the characterization (single request per app, solo).
pub fn run() -> Results {
    let node = NodeSpec::new(0, vec![GpuModel::TeslaC2050]);
    let mut rows = Vec::new();
    for app in AppKind::ALL {
        let profile = app.profile();
        let stream = StreamSpec {
            app,
            node: NodeId(0),
            tenant: TenantId(0),
            weight: 1.0,
            count: 1,
            load: 0.001, // a single, uncontended request
            server_threads: 1,
        };
        let mut scen = Scenario::single_node(StackConfig::cuda_runtime(), vec![stream], 1);
        scen.topology = TopologySpec::of_nodes(vec![node.clone()]);
        let stats = scen.run();
        let t = &stats.device_telemetry[0];
        let end = stats.makespan_ns.max(1);
        let compute_busy = t.compute.busy_ns(0, end) as f64;
        let copy_busy = t.copy.busy_ns(0, end) as f64;
        let gpu_ns = compute_busy + copy_busy;
        let runtime_ns = stats.completions.mean_ct(0);
        let bytes = (t.h2d_bytes + t.d2h_bytes) as f64;
        rows.push(Row {
            app,
            runtime_s: runtime_ns / 1e9,
            gpu_time_pct: 100.0 * gpu_ns / runtime_ns.max(1.0),
            transfer_pct: 100.0 * copy_busy / gpu_ns.max(1.0),
            mem_bw_mbps: if gpu_ns > 0.0 {
                bytes / gpu_ns * 1000.0
            } else {
                0.0
            },
            expected: (profile.gpu_time_frac * 100.0, profile.transfer_frac * 100.0),
        });
    }
    Results { rows }
}

/// Render as the table.
pub fn table(r: &Results) -> Table {
    let mut t = Table::new(vec![
        "app",
        "runtime(s)",
        "GPU time %",
        "(paper)",
        "transfer %",
        "(paper)",
        "mem BW (MB/s)",
    ]);
    for row in &r.rows {
        t.row(vec![
            row.app.to_string(),
            format!("{:.2}", row.runtime_s),
            format!("{:.2}", row.gpu_time_pct),
            format!("{:.2}", row.expected.0),
            format!("{:.2}", row.transfer_pct),
            format!("{:.2}", row.expected.1),
            format!("{:.1}", row.mem_bw_mbps),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measured_characteristics_reproduce_profiles() {
        let r = run();
        assert_eq!(r.rows.len(), 10);
        for row in &r.rows {
            // Runtime within 25% of the profiled standalone runtime
            // (launch/copy overheads and sync gaps shift it slightly).
            let expect_rt = row.app.profile().runtime.as_secs_f64();
            assert!(
                (row.runtime_s - expect_rt).abs() / expect_rt < 0.25,
                "{}: runtime {:.2}s vs {expect_rt}s",
                row.app,
                row.runtime_s
            );
            // GPU-time share within 12 percentage points of Table I.
            assert!(
                (row.gpu_time_pct - row.expected.0).abs() < 12.0,
                "{}: gpu% {:.1} vs {:.1}",
                row.app,
                row.gpu_time_pct,
                row.expected.0
            );
            // Transfer share within 15 points (pageable-rate rounding).
            assert!(
                (row.transfer_pct - row.expected.1).abs() < 15.0,
                "{}: transfer% {:.1} vs {:.1}",
                row.app,
                row.transfer_pct,
                row.expected.1
            );
        }
        // Bandwidth ordering: the transfer-heavy apps top the table.
        let bw = |k: AppKind| r.rows.iter().find(|x| x.app == k).unwrap().mem_bw_mbps;
        assert!(bw(AppKind::MC) > bw(AppKind::GA));
        assert!(bw(AppKind::BO) > bw(AppKind::DC));
    }

    /// Regression pin on the exact measured utilization shares. These
    /// values flow through the telemetry bucket accumulators
    /// (`UtilizationTracker::bucketize`/`busy_ns`), so any off-by-one in
    /// bucket boundary handling shifts the second decimal and trips this
    /// before it can skew a whole experiment table.
    #[test]
    fn table_i_utilization_values_are_pinned() {
        let r = run();
        let expect = [
            (AppKind::DC, "89.22", "0.01"),
            (AppKind::SC, "10.71", "25.02"),
            (AppKind::BO, "41.01", "98.88"),
            (AppKind::MM, "80.07", "0.01"),
            (AppKind::HI, "86.38", "0.17"),
            (AppKind::EV, "41.90", "0.73"),
            (AppKind::BS, "24.42", "6.25"),
            (AppKind::MC, "84.35", "98.94"),
            (AppKind::GA, "1.13", "0.85"),
            (AppKind::SN, "2.04", "26.81"),
        ];
        for (app, gpu_pct, transfer_pct) in expect {
            let row = r.rows.iter().find(|x| x.app == app).unwrap();
            assert_eq!(
                format!("{:.2}", row.gpu_time_pct),
                gpu_pct,
                "{app}: GPU-time share drifted"
            );
            assert_eq!(
                format!("{:.2}", row.transfer_pct),
                transfer_pct,
                "{app}: transfer share drifted"
            );
        }
    }
}
