//! Extension — CPU fallback via Ocelot-style binary translation
//! (paper §VII future work).
//!
//! The host CPU socket joins the gPool as an execution target: slow
//! "compute engine" (translated kernels), but its "transfers" are host
//! memcpys with no PCIe hop. Under a GPU-saturating burst, the workload
//! balancer can overflow CPU-friendly work (low GPU-time, transfer-light
//! applications) onto it; measured runtimes (RTF) learn when the CPU is
//! worth using and when it is not.

use super::common::ExpScale;
use crate::scenario::{Scenario, StreamSpec};
use gpu_sim::spec::GpuModel;
use remoting::gpool::{NodeId, NodeSpec};
use remoting::topology::TopologySpec;
use strings_core::config::StackConfig;
use strings_core::device_sched::TenantId;
use strings_core::mapper::LbPolicy;
use strings_metrics::report::Table;
use strings_workloads::profile::AppKind;

/// One topology's outcome.
#[derive(Debug, Clone)]
pub struct Outcome {
    /// Pool label.
    pub label: &'static str,
    /// Mean completion time, ns.
    pub mean_ct_ns: f64,
    /// Kernels executed on the CPU target (0 without fallback).
    pub cpu_kernels: u64,
}

/// CPU-fallback results.
#[derive(Debug, Clone)]
pub struct Results {
    /// GPUs only.
    pub gpus_only: Outcome,
    /// GPUs + CPU socket in the gPool.
    pub with_cpu: Outcome,
}

fn burst(scale: &ExpScale) -> Vec<StreamSpec> {
    // A GPU-saturating Scan burst (CPU-friendly: 11% GPU time, small
    // kernels) plus a Histogram stream keeping the GPUs busy.
    let mk = |app, tenant, count, load| StreamSpec {
        app,
        node: NodeId(0),
        tenant: TenantId(tenant),
        weight: 1.0,
        count,
        load,
        server_threads: 8,
    };
    vec![
        mk(AppKind::HI, 0, scale.requests, 1.2),
        mk(AppKind::SC, 1, scale.requests * 2, 3.0),
    ]
}

fn measure(with_cpu: bool, label: &'static str, scale: &ExpScale) -> Outcome {
    let mut gpus = vec![GpuModel::Quadro2000, GpuModel::TeslaC2050];
    if with_cpu {
        gpus.push(GpuModel::XeonX5660);
    }
    let node = NodeSpec::new(0, gpus);
    // RTF learns per-target runtimes, so the CPU only gets work it suits.
    let cfg = StackConfig::strings(LbPolicy::GWtMin).with_feedback(LbPolicy::Rtf, 6);
    let mut scen = Scenario::single_node(cfg, burst(scale), 23);
    scen.topology = TopologySpec::of_nodes(vec![node]);
    let stats = scen.run();
    let cpu_kernels = if with_cpu {
        stats
            .device_telemetry
            .last()
            .map_or(0, |t| t.kernels_completed)
    } else {
        0
    };
    Outcome {
        label,
        mean_ct_ns: stats.mean_completion_ns(),
        cpu_kernels,
    }
}

/// Run both pools.
pub fn run(scale: &ExpScale) -> Results {
    Results {
        gpus_only: measure(false, "GPUs only (Quadro 2000 + Tesla C2050)", scale),
        with_cpu: measure(true, "GPUs + Xeon X5660 (Ocelot target)", scale),
    }
}

/// Render as a table.
pub fn table(r: &Results) -> Table {
    let mut t = Table::new(vec!["pool", "mean CT (s)", "kernels on CPU"]);
    for o in [&r.gpus_only, &r.with_cpu] {
        t.row(vec![
            o.label.to_string(),
            format!("{:.2}", o.mean_ct_ns / 1e9),
            o.cpu_kernels.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_target_absorbs_overflow_work() {
        let r = run(&ExpScale::quick());
        assert!(
            r.with_cpu.cpu_kernels > 0,
            "the balancer should overflow work onto the CPU target"
        );
        // At quick scale the run ends during feedback cold-start (the
        // pre-switch GWtMin phase overuses the weak CPU), so only guard
        // against a catastrophic regression here; the full-scale binary
        // shows a net win once RTF has learned per-target runtimes.
        assert!(
            r.with_cpu.mean_ct_ns < r.gpus_only.mean_ct_ns * 1.6,
            "CPU fallback catastrophically hurt: {:.2}s vs {:.2}s",
            r.with_cpu.mean_ct_ns / 1e9,
            r.gpus_only.mean_ct_ns / 1e9
        );
    }
}
