//! Figure 11 — fairness of TFS-Strings vs TFS-Rain vs the CUDA runtime.
//!
//! Each workload pair shares a *single* GPU with equal shares. Fairness is
//! Jain's index over each tenant's **normalized progress**: engine service
//! attained while sharing divided by the service the same stream attains
//! running alone over the same horizon (capped at 1). Normalizing by
//! demand matters because several Group B applications (Gaussian, Sorting
//! Networks) physically cannot consume half a GPU — raw service shares
//! would brand every scheduler unfair on those pairs, while the paper's
//! bars reach 99 %+.
//!
//! Paper result: TFS-Strings averages ≈ 91 % — 13 % better than the CUDA
//! runtime and 7.14 % better than TFS-Rain; TFS-Strings peaks near 99.99 %.
//! Rain loses fairness because its service measurements include context-
//! switch overhead, and the switching itself wastes GPU time.

use super::common::ExpScale;
use crate::scenario::{Scenario, StreamSpec};
use gpu_sim::spec::GpuModel;
use remoting::gpool::{NodeId, NodeSpec};
use remoting::topology::TopologySpec;
use strings_core::config::StackConfig;
use strings_core::device_sched::{GpuPolicy, TenantId};
use strings_core::mapper::LbPolicy;
use strings_metrics::fairness::jain_fairness;
use strings_metrics::report::{fmt_pct, Table};
use strings_workloads::pairs::{workload_pairs, PairLabel};
use strings_workloads::profile::AppKind;

/// Horizon within which attained service is compared (ns).
const HORIZON_NS: u64 = 60_000_000_000;

/// One row: fairness under the three systems.
#[derive(Debug, Clone)]
pub struct Row {
    /// Pair label.
    pub label: PairLabel,
    /// Group A application.
    pub a: AppKind,
    /// Group B application.
    pub b: AppKind,
    /// Jain's index under the bare CUDA runtime.
    pub cuda: f64,
    /// Jain's index under TFS-Rain.
    pub tfs_rain: f64,
    /// Jain's index under TFS-Strings.
    pub tfs_strings: f64,
}

/// Figure 11 results.
#[derive(Debug, Clone)]
pub struct Results {
    /// One row per pair.
    pub rows: Vec<Row>,
    /// Average fairness (cuda, tfs-rain, tfs-strings).
    pub averages: (f64, f64, f64),
}

fn run_tenants(
    cfg: StackConfig,
    streams: Vec<StreamSpec>,
    seed: u64,
    node: &NodeSpec,
) -> std::collections::BTreeMap<strings_core::device_sched::TenantId, u64> {
    let mut scen = Scenario::single_node(cfg, streams, seed);
    scen.topology = TopologySpec::of_nodes(vec![node.clone()]);
    scen.fairness_horizon = Some(HORIZON_NS);
    scen.run().tenant_service_ns
}

fn fairness_of(cfg: StackConfig, a: AppKind, b: AppKind, scale: &ExpScale) -> f64 {
    // Single-GPU node: one Tesla C2050 — both tenants must share it.
    let node = NodeSpec::new(0, vec![GpuModel::TeslaC2050]);
    // A few concurrent instances per tenant, replayed densely, keep both
    // tenants GPU-hungry through the horizon so shares actually contend.
    let mk = |app: AppKind, tenant: u32, count: usize| StreamSpec {
        app,
        node: NodeId(0),
        tenant: TenantId(tenant),
        weight: 1.0,
        count,
        load: 6.0,
        server_threads: 3,
    };
    let sa = mk(a, 0, scale.requests);
    let sb = mk(b, 1, scale.requests * 3);
    let mut total = 0.0;
    for &seed in &scale.seeds {
        // Demand: what each stream attains with the GPU to itself.
        let solo_a = run_tenants(cfg, vec![sa.clone()], seed, &node)
            .values()
            .copied()
            .next()
            .unwrap_or(0);
        let solo_b = run_tenants(cfg, vec![sb.clone()], seed, &node)
            .values()
            .copied()
            .next()
            .unwrap_or(0);
        let shared = run_tenants(cfg, vec![sa.clone(), sb.clone()], seed, &node);
        let got_a = shared.get(&TenantId(0)).copied().unwrap_or(0);
        let got_b = shared.get(&TenantId(1)).copied().unwrap_or(0);
        if solo_a == 0 || solo_b == 0 {
            total += 0.5;
            continue;
        }
        let xs = [
            (got_a as f64 / solo_a as f64).min(1.0),
            (got_b as f64 / solo_b as f64).min(1.0),
        ];
        total += jain_fairness(&xs);
    }
    total / scale.seeds.len() as f64
}

/// Run over a subset of pairs.
pub fn run_pairs(scale: &ExpScale, pairs: &[(PairLabel, AppKind, AppKind)]) -> Results {
    let mut rows = Vec::new();
    for &(label, a, b) in pairs {
        let cuda = fairness_of(StackConfig::cuda_runtime(), a, b, scale);
        let tfs_rain = fairness_of(
            StackConfig::rain(LbPolicy::GMin).with_gpu_policy(GpuPolicy::Tfs),
            a,
            b,
            scale,
        );
        let tfs_strings = fairness_of(
            StackConfig::strings(LbPolicy::GMin).with_gpu_policy(GpuPolicy::Tfs),
            a,
            b,
            scale,
        );
        rows.push(Row {
            label,
            a,
            b,
            cuda,
            tfs_rain,
            tfs_strings,
        });
    }
    let n = rows.len() as f64;
    let averages = (
        rows.iter().map(|r| r.cuda).sum::<f64>() / n,
        rows.iter().map(|r| r.tfs_rain).sum::<f64>() / n,
        rows.iter().map(|r| r.tfs_strings).sum::<f64>() / n,
    );
    Results { rows, averages }
}

/// Run over all 24 pairs.
pub fn run(scale: &ExpScale) -> Results {
    run_pairs(scale, &workload_pairs())
}

/// Render as the figure's data table.
pub fn table(r: &Results) -> Table {
    let mut t = Table::new(vec!["pair", "apps", "CUDA", "TFS-Rain", "TFS-Strings"]);
    for row in &r.rows {
        t.row(vec![
            row.label.to_string(),
            format!("{}-{}", row.a, row.b),
            fmt_pct(row.cuda),
            fmt_pct(row.tfs_rain),
            fmt_pct(row.tfs_strings),
        ]);
    }
    t.row(vec![
        "AVG".to_string(),
        String::new(),
        fmt_pct(r.averages.0),
        fmt_pct(r.averages.1),
        fmt_pct(r.averages.2),
    ]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tfs_strings_is_fairest_on_representative_pairs() {
        let all = workload_pairs();
        // Pairs with meaningful GPU demand on both sides.
        let subset = [all[1], all[13]]; // B = DC-MC, N = MM-MC
        let r = run_pairs(&ExpScale::quick(), &subset);
        let (cuda, rain, strings) = r.averages;
        assert!(strings > 0.6, "TFS-Strings fairness too low: {strings}");
        assert!(
            strings >= rain - 0.05,
            "TFS-Strings {strings} must not trail TFS-Rain {rain}"
        );
        assert!(
            strings >= cuda - 0.05,
            "TFS-Strings {strings} must not trail CUDA {cuda}"
        );
        assert_eq!(table(&r).len(), 3);
    }
}
