//! Figure 13 — GPU-scheduling gains isolated from GPU sharing.
//!
//! The same policy runs as Figure 12, but the baseline is *GRR with all
//! four GPUs shared* (GRR-Rain, global scope), so the speedups show only
//! the device-level scheduler's contribution.
//!
//! Paper averages: LAS-Rain ≈ 1.40×, LAS-Strings ≈ 1.95×, PS-Strings ≈
//! 1.90× over the shared-GRR baseline.

use super::common::{mean_ct, pair_streams, shared_grr_baseline, ExpScale};
use super::fig12::{policies, Results, Row};
use crate::scenario::Scenario;
use strings_metrics::report::{fmt_speedup, Table};
use strings_workloads::pairs::{workload_pairs, PairLabel};
use strings_workloads::profile::AppKind;

/// Run over a subset of pairs.
pub fn run_pairs(scale: &ExpScale, pairs: &[(PairLabel, AppKind, AppKind)]) -> Results {
    let mut rows = Vec::new();
    for &(label, a, b) in pairs {
        let streams = pair_streams(a, b, scale);
        let base_ct = mean_ct(&shared_grr_baseline(streams.clone()), scale);
        let mut speedups = Vec::new();
        for (plabel, cfg) in policies() {
            let s = Scenario::supernode(cfg, streams.clone(), 0);
            speedups.push((plabel, base_ct / mean_ct(&s, scale)));
        }
        rows.push(Row {
            label,
            a,
            b,
            speedups,
        });
    }
    let labels: Vec<String> = policies().into_iter().map(|(l, _)| l).collect();
    let averages = labels
        .iter()
        .map(|l| {
            let sum: f64 = rows
                .iter()
                .filter_map(|r| r.speedups.iter().find(|(pl, _)| pl == l))
                .map(|(_, s)| *s)
                .sum();
            (l.clone(), sum / rows.len() as f64)
        })
        .collect();
    Results { rows, averages }
}

/// Run over all 24 pairs.
pub fn run(scale: &ExpScale) -> Results {
    run_pairs(scale, &workload_pairs())
}

/// Render as the figure's data table.
pub fn table(r: &Results) -> Table {
    let mut header = vec!["pair".to_string(), "apps".to_string()];
    header.extend(r.averages.iter().map(|(l, _)| l.clone()));
    let mut t = Table::new(header);
    for row in &r.rows {
        let mut cells = vec![row.label.to_string(), format!("{}-{}", row.a, row.b)];
        cells.extend(row.speedups.iter().map(|(_, s)| fmt_speedup(*s)));
        t.row(cells);
    }
    let mut avg = vec!["AVG".to_string(), String::new()];
    avg.extend(r.averages.iter().map(|(_, s)| fmt_speedup(*s)));
    t.row(avg);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scheduler_only_gains_are_smaller_than_fig12() {
        let all = workload_pairs();
        let subset = [all[1]];
        let scale = ExpScale::quick();
        let vs_shared = run_pairs(&scale, &subset);
        let vs_single = super::super::fig12::run_pairs(&scale, &subset);
        // Versus the stronger (shared) baseline, gains must be smaller.
        let a = vs_shared.average("GWtMinLAS-Strings").unwrap();
        let b = vs_single.average("GWtMinLAS-Strings").unwrap();
        assert!(
            a <= b * 1.05,
            "shared-baseline speedup {a} should not exceed single-node-baseline {b}"
        );
    }
}
