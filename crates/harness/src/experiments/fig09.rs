//! Figure 9 — importance of workload balancing.
//!
//! Single node (NodeA: Quadro 2000 + Tesla C2050), one request stream per
//! application; speedup in mean completion time of each Rain/Strings
//! workload-balancing policy over the bare CUDA runtime (whose static
//! device selection piles every request onto local device 0).
//!
//! Paper result (averages over applications): GRR/GMin/GWtMin-Rain ≈
//! 2.16/2.37/2.34×; GRR/GMin/GWtMin-Strings ≈ 3.10/4.90/4.73×; every
//! Strings policy beats its Rain counterpart (~2.1× on average).

use super::common::{mean_ct, normalized_stream, ExpScale};
use crate::scenario::Scenario;
use remoting::gpool::NodeId;
use strings_core::config::StackConfig;
use strings_core::device_sched::TenantId;
use strings_core::mapper::LbPolicy;
use strings_metrics::report::{fmt_speedup, Table};
use strings_workloads::profile::AppKind;

/// The six policy columns of the figure.
pub fn policies() -> Vec<(String, StackConfig)> {
    let mut v = Vec::new();
    for lb in [LbPolicy::Grr, LbPolicy::GMin, LbPolicy::GWtMin] {
        v.push((format!("{}-Rain", lb.label()), StackConfig::rain(lb)));
    }
    for lb in [LbPolicy::Grr, LbPolicy::GMin, LbPolicy::GWtMin] {
        v.push((format!("{}-Strings", lb.label()), StackConfig::strings(lb)));
    }
    v
}

/// One row: per-application speedups over the CUDA runtime.
#[derive(Debug, Clone)]
pub struct Row {
    /// The application.
    pub app: AppKind,
    /// (policy label, speedup) pairs in [`policies`] order.
    pub speedups: Vec<(String, f64)>,
}

/// Figure 9 results.
#[derive(Debug, Clone)]
pub struct Results {
    /// One row per application.
    pub rows: Vec<Row>,
    /// Per-policy averages across applications (the paper's headline
    /// numbers).
    pub averages: Vec<(String, f64)>,
}

impl Results {
    /// Average speedup of one policy by label.
    pub fn average(&self, label: &str) -> Option<f64> {
        self.averages
            .iter()
            .find(|(l, _)| l == label)
            .map(|(_, s)| *s)
    }
}

/// Run the experiment.
pub fn run(scale: &ExpScale) -> Results {
    let mut rows = Vec::new();
    for app in AppKind::ALL {
        let streams = vec![normalized_stream(
            app,
            NodeId(0),
            TenantId(0),
            scale.requests,
            scale.load,
        )];
        let baseline = Scenario::single_node(StackConfig::cuda_runtime(), streams.clone(), 0);
        let base_ct = mean_ct(&baseline, scale);
        let mut speedups = Vec::new();
        for (label, cfg) in policies() {
            let s = Scenario::single_node(cfg, streams.clone(), 0);
            let ct = mean_ct(&s, scale);
            speedups.push((label, base_ct / ct));
        }
        rows.push(Row { app, speedups });
    }
    let labels: Vec<String> = policies().into_iter().map(|(l, _)| l).collect();
    let averages = labels
        .iter()
        .map(|label| {
            let sum: f64 = rows
                .iter()
                .map(|r| {
                    r.speedups
                        .iter()
                        .find(|(l, _)| l == label)
                        .map(|(_, s)| *s)
                        .unwrap_or(0.0)
                })
                .sum();
            (label.clone(), sum / rows.len() as f64)
        })
        .collect();
    Results { rows, averages }
}

/// Render as the figure's data table.
pub fn table(r: &Results) -> Table {
    let mut header = vec!["app".to_string()];
    header.extend(r.averages.iter().map(|(l, _)| l.clone()));
    let mut t = Table::new(header);
    for row in &r.rows {
        let mut cells = vec![row.app.to_string()];
        cells.extend(row.speedups.iter().map(|(_, s)| fmt_speedup(*s)));
        t.row(cells);
    }
    let mut avg = vec!["AVG".to_string()];
    avg.extend(r.averages.iter().map(|(_, s)| fmt_speedup(*s)));
    t.row(avg);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_has_paper_shape() {
        let r = run(&ExpScale::quick());
        assert_eq!(r.rows.len(), 10);
        // Every policy must beat the colliding baseline on average.
        for (label, avg) in &r.averages {
            assert!(*avg > 1.0, "{label} average {avg} <= 1.0");
        }
        // Strings beats Rain for the same balancing policy.
        for lb in ["GRR", "GMin", "GWtMin"] {
            let rain = r.average(&format!("{lb}-Rain")).unwrap();
            let strings = r.average(&format!("{lb}-Strings")).unwrap();
            assert!(
                strings > rain * 0.95,
                "{lb}: Strings {strings} must not lose to Rain {rain}"
            );
        }
        let t = table(&r);
        assert_eq!(t.len(), 11); // 10 apps + AVG
    }
}
