//! Figure 2 — Monte Carlo utilization: sequential contexts vs concurrent
//! streams.
//!
//! The motivating experiment: independent Monte Carlo request sets on one
//! GPU, (a) each in its own process/context — the driver multiplexes with
//! context-switch "glitches" — versus (b) dispatched over CUDA streams in
//! one shared context, giving much more uniform utilization.

use super::common::ExpScale;
use crate::scenario::{Scenario, StreamSpec};
use gpu_sim::spec::GpuModel;
use remoting::gpool::{NodeId, NodeSpec};
use remoting::topology::TopologySpec;
use sim_core::telemetry::{combined_busy_fraction, combined_idle_gaps};
use sim_core::trace::Trace;
use strings_core::config::StackConfig;
use strings_core::device_sched::TenantId;
use strings_core::mapper::LbPolicy;
use strings_metrics::report::{fmt_pct, sparkline, Table};
use strings_workloads::profile::AppKind;

/// Idle gaps at or above this length count as visible glitches (longer
/// than a single context switch, so each switch shows up).
const GLITCH_NS: u64 = 1_000_000;

/// One execution mode's utilization measurements.
#[derive(Debug, Clone)]
pub struct Timeline {
    /// Mode label.
    pub label: &'static str,
    /// Bucketized compute utilization over the busy window.
    pub buckets: Vec<f64>,
    /// Mean compute utilization.
    pub mean_util: f64,
    /// Idle glitches (all-engine gaps ≥ `GLITCH_NS`, 1 ms), derived from the
    /// recorded trace's engine-occupancy spans.
    pub glitches: usize,
    /// The same glitch count derived from aggregate telemetry — an
    /// independent path over the same start/finish instants; must agree
    /// with [`Timeline::glitches`] exactly.
    pub glitches_telemetry: usize,
    /// Context switches performed by the driver.
    pub context_switches: u64,
    /// The run's recorded trace (engine spans, scheduler decisions,
    /// request spans) for export.
    pub trace: Trace,
}

/// Figure 2 results.
#[derive(Debug, Clone)]
pub struct Results {
    /// Sequential (per-process contexts) execution.
    pub sequential: Timeline,
    /// Concurrent (packed context, CUDA streams) execution.
    pub concurrent: Timeline,
}

fn measure(cfg: StackConfig, label: &'static str, scale: &ExpScale) -> Timeline {
    let node = NodeSpec::new(0, vec![GpuModel::TeslaC2050]);
    // Two independent MC request sets on one GPU, as in the paper's
    // experiment; load high enough to keep the device backlogged so idle
    // time reflects scheduling, not arrival lulls.
    let mk = |tenant: u32| StreamSpec {
        app: AppKind::MC,
        node: NodeId(0),
        tenant: TenantId(tenant),
        weight: 1.0,
        count: scale.requests,
        load: 3.0,
        server_threads: 8,
    };
    let mut scen = Scenario::single_node(cfg, vec![mk(0), mk(1)], scale.seeds[0]);
    scen.topology = TopologySpec::of_nodes(vec![node]);
    scen.trace = true;
    let mut stats = scen.run();
    let trace = stats.trace.take().expect("fig02 always records a trace");
    let t = &stats.device_telemetry[0];
    let end = stats.makespan_ns.max(1);
    // "GPU utilization" is any-engine activity: MC is transfer-dominated,
    // so the copy engines carry most of its busy time.
    let engines = [&t.compute, &t.copy];
    let cb = t.compute.bucketize(0, end, 60);
    let pb = t.copy.bucketize(0, end, 60);
    let buckets: Vec<f64> = cb.iter().zip(&pb).map(|(a, b)| a.max(*b)).collect();
    // Glitches as a trace query: union the engine tracks' span intervals
    // (kernels on "compute", transfers on "copy*") and count the maximal
    // uncovered gaps. The telemetry count is kept alongside as an
    // independent derivation of the same instants.
    let engine_tracks = trace.find_tracks(|d| {
        d.process == "GID0" && (d.thread == "compute" || d.thread.starts_with("copy"))
    });
    Timeline {
        label,
        buckets,
        mean_util: combined_busy_fraction(&engines, 0, end),
        glitches: sim_core::trace::combined_idle_gaps(&trace, &engine_tracks, 0, end, GLITCH_NS),
        glitches_telemetry: combined_idle_gaps(&engines, 0, end, GLITCH_NS),
        context_switches: t.context_switches,
        trace,
    }
}

/// Run both modes.
pub fn run(scale: &ExpScale) -> Results {
    Results {
        sequential: measure(StackConfig::cuda_runtime(), "sequential (contexts)", scale),
        concurrent: measure(
            StackConfig::strings(LbPolicy::GMin),
            "concurrent (streams)",
            scale,
        ),
    }
}

/// Render as a comparison table (the binary also prints sparklines).
pub fn table(r: &Results) -> Table {
    let mut t = Table::new(vec![
        "mode",
        "mean util",
        "glitches",
        "ctx switches",
        "timeline",
    ]);
    for tl in [&r.sequential, &r.concurrent] {
        t.row(vec![
            tl.label.to_string(),
            fmt_pct(tl.mean_util),
            tl.glitches.to_string(),
            tl.context_switches.to_string(),
            sparkline(&tl.buckets),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_remove_context_switching() {
        let r = run(&ExpScale::quick());
        // The trace-derived glitch count and the telemetry-derived one
        // walk different representations of the same engine instants.
        for tl in [&r.sequential, &r.concurrent] {
            assert_eq!(
                tl.glitches, tl.glitches_telemetry,
                "{}: trace says {} glitches, telemetry {}",
                tl.label, tl.glitches, tl.glitches_telemetry
            );
        }
        assert!(
            r.sequential.context_switches > 0,
            "sequential mode must context-switch"
        );
        assert_eq!(
            r.concurrent.context_switches, 0,
            "packed context never switches"
        );
        assert!(
            r.concurrent.glitches < r.sequential.glitches,
            "streams must remove glitches: {} !< {}",
            r.concurrent.glitches,
            r.sequential.glitches
        );
        // Concurrent execution drains the same backlog sooner, so its mean
        // utilization over the (shorter) makespan may dip slightly; it must
        // not collapse.
        assert!(
            r.concurrent.mean_util > r.sequential.mean_util * 0.8,
            "concurrent utilization collapsed: {} vs {}",
            r.concurrent.mean_util,
            r.sequential.mean_util
        );
        assert_eq!(r.sequential.buckets.len(), 60);
    }
}
