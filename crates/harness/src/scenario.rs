//! Declarative scenario descriptions.
//!
//! A [`Scenario`] describes one experiment run: the node topology, the
//! request streams (which applications arrive where, how fast, how many),
//! the scheduler stack, and the seed. `Scenario::run()` compiles it into a
//! [`crate::world::World`] and executes it.

use crate::world::{PlannedRequest, World};
use crate::RunStats;
use gpu_sim::device::DeviceConfig;
use remoting::gpool::NodeId;
use remoting::topology::TopologySpec;
use serde::{Deserialize, Serialize};
use sim_core::fault::FaultPlan;
use sim_core::rng::SimRng;
use sim_core::SimTime;
use strings_core::config::StackConfig;
use strings_core::device_sched::TenantId;
use strings_core::mapper::WorkloadClass;
use strings_workloads::arrivals::RequestStream;
use strings_workloads::profile::AppKind;
use strings_workloads::tracegen::TraceGenerator;

/// Host-side fixed costs (calibration knobs, DESIGN.md §8).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HostCosts {
    /// One-time GPU context creation (per process per device).
    pub ctx_create_ns: u64,
    /// `cudaStreamCreate` cost.
    pub stream_create_ns: u64,
    /// RM registration handshake (three IPC messages).
    pub handshake_ns: u64,
    /// `cudaMalloc` round trip.
    pub malloc_ns: u64,
    /// Host-side cost to issue a kernel launch.
    pub kernel_issue_ns: u64,
    /// Interposer ↔ workload-balancer round trip.
    pub balancer_rtt_ns: u64,
}

impl Default for HostCosts {
    fn default() -> Self {
        HostCosts {
            ctx_create_ns: 30_000_000, // 30 ms
            stream_create_ns: 10_000,
            handshake_ns: 9_000,
            malloc_ns: 10_000,
            kernel_issue_ns: 5_000,
            balancer_rtt_ns: 8_000,
        }
    }
}

/// Whether the workload balancer sees the whole gPool or only the
/// application's own node (the paper's "single node" baselines).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LbScope {
    /// One balancer over the entire supernode gPool.
    Global,
    /// One balancer per node, restricted to local GPUs.
    Local,
}

/// One request stream: a logical application receiving end-user requests.
#[derive(Debug, Clone)]
pub struct StreamSpec {
    /// Which benchmark application serves the requests.
    pub app: AppKind,
    /// Node the service (frontend) runs on.
    pub node: NodeId,
    /// Tenant identity for fairness accounting.
    pub tenant: TenantId,
    /// Tenant weight.
    pub weight: f64,
    /// Number of requests.
    pub count: usize,
    /// Offered load: λ = runtime / load (higher = denser arrivals).
    pub load: f64,
    /// Server threads: maximum requests of this stream in flight at once
    /// (the paper's SPECpower model serves end users with "a finite number
    /// of server threads"); excess arrivals wait in the server queue.
    pub server_threads: usize,
}

impl StreamSpec {
    /// A stream with defaults: tenant = slot, weight 1, node 0.
    pub fn of(app: AppKind, count: usize, load: f64) -> Self {
        StreamSpec {
            app,
            node: NodeId(0),
            tenant: TenantId(0),
            weight: 1.0,
            count,
            load,
            server_threads: 12,
        }
    }
}

/// A complete experiment description.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Machines, their GPUs, and the network joining them.
    pub topology: TopologySpec,
    /// Scheduler stack under test.
    pub stack: StackConfig,
    /// Balancer scope.
    pub scope: LbScope,
    /// Device/driver timing.
    pub device_cfg: DeviceConfig,
    /// Host-side costs.
    pub costs: HostCosts,
    /// Request streams, one per slot.
    pub streams: Vec<StreamSpec>,
    /// Only service completed before this instant counts toward the
    /// fairness metric (None = whole run).
    pub fairness_horizon: Option<SimTime>,
    /// Faults to inject (crashes, device/node losses, link trouble),
    /// stamped in virtual time. [`FaultPlan::none`] for healthy runs.
    pub faults: FaultPlan,
    /// RNG seed.
    pub seed: u64,
    /// Record a structured trace of the run (engine spans, scheduler
    /// decisions, request spans) into [`RunStats::trace`].
    pub trace: bool,
    /// Record only the lightweight latency-attribution trace (request
    /// spans + stage charges; implied by [`Scenario::trace`]).
    pub attribution: bool,
    /// Flight-recorder ring depth per node. `None` keeps the always-on
    /// default; `Some(0)` disables recording.
    pub flight_depth: Option<usize>,
    /// Record wall-clock per executive phase into
    /// [`RunStats::self_profile`] (bench trajectory only).
    pub self_profile: bool,
}

impl Scenario {
    /// Scenario over an explicit [`TopologySpec`] — the general
    /// constructor; [`Scenario::single_node`] and [`Scenario::supernode`]
    /// are canned shorthands.
    pub fn on(
        topology: TopologySpec,
        stack: StackConfig,
        streams: Vec<StreamSpec>,
        seed: u64,
    ) -> Self {
        Scenario {
            topology,
            stack,
            scope: LbScope::Global,
            device_cfg: DeviceConfig::default(),
            costs: HostCosts::default(),
            streams,
            fairness_horizon: None,
            faults: FaultPlan::none(),
            seed,
            trace: false,
            attribution: false,
            flight_depth: None,
            self_profile: false,
        }
    }

    /// Single-node scenario (the paper's NodeA) with the given stack.
    pub fn single_node(stack: StackConfig, streams: Vec<StreamSpec>, seed: u64) -> Self {
        Self::on(TopologySpec::node_a(), stack, streams, seed)
    }

    /// The paper's emulated supernode: NodeA + NodeB over GbE.
    pub fn supernode(stack: StackConfig, streams: Vec<StreamSpec>, seed: u64) -> Self {
        Self::on(TopologySpec::supernode(), stack, streams, seed)
    }

    /// Inject the given fault plan during the run.
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Restrict the balancer to each application's own node.
    pub fn with_scope(mut self, scope: LbScope) -> Self {
        self.scope = scope;
        self
    }

    /// Record a structured trace of the run.
    pub fn with_trace(mut self) -> Self {
        self.trace = true;
        self
    }

    /// Record only the lightweight latency-attribution trace.
    pub fn with_attribution(mut self) -> Self {
        self.attribution = true;
        self
    }

    /// Override the flight recorder's per-node ring depth (0 disables).
    pub fn with_flight_depth(mut self, depth: usize) -> Self {
        self.flight_depth = Some(depth);
        self
    }

    /// Record wall-clock per executive phase into
    /// [`RunStats::self_profile`].
    pub fn with_self_profile(mut self) -> Self {
        self.self_profile = true;
        self
    }

    /// Compile the request schedule (deterministic in the seed).
    pub fn plan(&self) -> Vec<PlannedRequest> {
        self.plan_with_seed(self.seed)
    }

    /// Compile the request schedule for an explicit seed, ignoring
    /// [`Scenario::seed`]. Lets seed sweeps share one base scenario
    /// instead of cloning it per seed.
    pub fn plan_with_seed(&self, seed: u64) -> Vec<PlannedRequest> {
        let mut root = SimRng::new(seed);
        let mut requests = Vec::new();
        for (slot, spec) in self.streams.iter().enumerate() {
            let mut rng = root.fork(slot as u64);
            let profile = spec.app.profile();
            let gen = TraceGenerator::default();
            let arrivals =
                RequestStream::for_app_runtime(spec.count, profile.runtime, spec.load, &mut rng);
            for &arrival in arrivals.arrivals() {
                requests.push(PlannedRequest {
                    arrival,
                    slot,
                    class: WorkloadClass(spec.app as u32),
                    node: spec.node,
                    tenant: spec.tenant,
                    weight: spec.weight,
                    server_threads: spec.server_threads,
                    program: gen.generate(&profile, &mut rng),
                });
            }
        }
        requests.sort_by_key(|r| (r.arrival, r.slot));
        requests
    }

    /// Run the scenario to completion.
    pub fn run(&self) -> RunStats {
        self.run_with_seed(self.seed)
    }

    /// Run the scenario with an explicit seed, ignoring [`Scenario::seed`].
    /// Everything else (topology, streams, faults) comes from `self`, so
    /// seed sweeps can fan out from one shared scenario.
    pub fn run_with_seed(&self, seed: u64) -> RunStats {
        let requests = self.plan_with_seed(seed);
        let mut world = World::new(
            &self.topology,
            self.device_cfg,
            self.stack,
            self.scope,
            self.costs,
            requests,
            self.fairness_horizon,
        );
        world.set_seed(seed);
        world.set_fault_plan(&self.faults);
        if self.trace {
            world.enable_tracing();
        } else if self.attribution {
            world.enable_attribution();
        }
        if let Some(depth) = self.flight_depth {
            world.set_flight_depth(depth);
        }
        if self.self_profile {
            world.enable_self_profile();
        }
        world.run()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use strings_core::mapper::LbPolicy;

    #[test]
    fn plan_is_deterministic_and_sorted() {
        let s = Scenario::single_node(
            StackConfig::strings(LbPolicy::GMin),
            vec![
                StreamSpec::of(AppKind::MC, 5, 1.0),
                StreamSpec {
                    node: NodeId(0),
                    ..StreamSpec::of(AppKind::BS, 5, 1.0)
                },
            ],
            42,
        );
        let p1 = s.plan();
        let p2 = s.plan();
        assert_eq!(p1.len(), 10);
        assert!(p1.windows(2).all(|w| w[0].arrival <= w[1].arrival));
        assert_eq!(
            p1.iter().map(|r| r.arrival).collect::<Vec<_>>(),
            p2.iter().map(|r| r.arrival).collect::<Vec<_>>()
        );
    }

    #[test]
    fn different_seeds_differ() {
        let mk = |seed| {
            Scenario::single_node(
                StackConfig::strings(LbPolicy::GMin),
                vec![StreamSpec::of(AppKind::MC, 5, 1.0)],
                seed,
            )
            .plan()
        };
        let a = mk(1);
        let b = mk(2);
        assert_ne!(
            a.iter().map(|r| r.arrival).collect::<Vec<_>>(),
            b.iter().map(|r| r.arrival).collect::<Vec<_>>()
        );
    }

    #[test]
    fn scenario_runs_end_to_end() {
        let s = Scenario::single_node(
            StackConfig::strings(LbPolicy::GMin),
            vec![StreamSpec::of(AppKind::GA, 3, 1.0)],
            7,
        );
        let stats = s.run();
        assert_eq!(stats.completed_requests, 3);
        assert!(stats.makespan_ns > 0);
    }

    #[test]
    fn supernode_has_four_gpus() {
        let s = Scenario::supernode(
            StackConfig::strings(LbPolicy::Grr),
            vec![StreamSpec::of(AppKind::GA, 4, 2.0)],
            7,
        );
        let stats = s.run();
        assert_eq!(stats.device_telemetry.len(), 4);
        assert_eq!(stats.completed_requests, 4);
    }
}
