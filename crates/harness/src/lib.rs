//! # strings-harness
//!
//! The simulation executive ("world") that glues every substrate together —
//! host threads ([`cuda_sim`]), the interposer/remoting layer
//! ([`remoting`]), the Strings scheduler stack ([`strings_core`]), and the
//! GPU devices ([`gpu_sim`]) — plus the scenario builders and experiment
//! definitions that regenerate every figure and table of the paper.
//!
//! * [`world`] — the deterministic event loop. One [`world::World`] is one
//!   simulation run: a set of planned requests executed against a device
//!   topology under a [`strings_core::StackConfig`].
//! * [`scenario`] — declarative run descriptions (topology, request
//!   streams, scheduler stack, seed) that compile into a `World`.
//! * [`serve`] — open-loop serving scenarios: a seeded arrival process
//!   offers multi-tenant load for a fixed duration through an admission
//!   front door, summarized by an SLO report (`strings-sim serve`).
//! * [`stats`] — what a run reports: per-slot completion times, per-tenant
//!   attained service, device telemetry.
//! * [`experiments`] — one module per paper figure/table, each exposing a
//!   `run(...) -> Table`-style entry point used by both the regeneration
//!   binaries and the Criterion benches.
//! * [`explain`] — the `strings-sim explain` blame-chain renderer: one
//!   request's flight-record chain plus its attribution stage charges.
//! * [`sweep`] — seed-parallel scenario fan-out across OS threads (the DES
//!   itself stays single-threaded for determinism).

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod cli;
pub mod experiments;
pub mod explain;
pub mod scenario;
pub mod serve;
pub mod stats;
pub mod sweep;
pub mod world;

pub use scenario::{HostCosts, LbScope, Scenario, StreamSpec};
pub use serve::ServeSpec;
pub use stats::RunStats;
pub use world::{PlannedRequest, World};
