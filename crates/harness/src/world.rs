//! The simulation executive.
//!
//! A [`World`] runs one scenario to completion: planned requests arrive as
//! negative-exponential streams, each becoming a host thread that walks its
//! program; CUDA calls flow through the configured scheduler stack (bare
//! runtime, Rain, or Strings) onto the simulated devices; completions wake
//! blocked hosts; the dispatcher gates per-application streams each epoch.
//!
//! Everything is event-driven over one deterministic queue. The world owns
//! all state (hosts, devices, mappers, schedulers, packers) and is the only
//! mutator, so the borrow story stays simple and a run is exactly
//! reproducible from its seed.

use crate::scenario::{HostCosts, LbScope};
use crate::stats::{PhaseProfile, RunStats, TenantOutcomes};
use cuda_sim::call::CudaCall;
use cuda_sim::host::{AppId, BlockOn, HostThread, ProcessId};
use cuda_sim::pending::PendingOps;
use cuda_sim::program::HostOp;
use cuda_sim::program::HostProgram;
use cuda_sim::registry::ContextRegistry;
use gpu_sim::device::{CompletedJob, Device, DeviceConfig};
use gpu_sim::ids::{ContextId, JobId, StreamId};
use gpu_sim::job::{CopyDirection, JobKind};
use remoting::backend::{BackendDesign, APP_PID_BASE, HOST_PID_BASE};
use remoting::channel::ChannelSpec;
use remoting::gpool::{Gid, NodeId, ShardedGPool};
use remoting::network::NetworkModel;
use remoting::telemetry::RpcCounters;
use remoting::topology::TopologySpec;
use sim_core::event::EventQueue;
use sim_core::fault::{FaultKind, FaultPlan};
use sim_core::flight::{DumpReason, FlightKind, FlightRecord, FlightRecorder, NO_ID};
use sim_core::fxhash::FxHashMap;
use sim_core::rng::SimRng;
use sim_core::trace::{Stage, Tracer, TrackId};
use sim_core::{EventKey, SimDuration, SimTime};
use std::collections::VecDeque;
use strings_core::admission::{AdmissionConfig, AdmissionController};
use strings_core::config::{SchedulerMode, StackConfig};
use strings_core::device_sched::{AppWork, GpuPolicy, GpuScheduler, Phase, TenantId};
use strings_core::mapper::{GpuAffinityMapper, WorkloadClass};
use strings_core::packer::{ContextPacker, PackedCall};
use strings_metrics::alerts::{BurnRateConfig, BurnRateEngine};
use strings_metrics::registry::{MetricKind, MetricsRegistry};
use strings_metrics::slo::SloRecord;
use strings_metrics::CompletionSet;

/// Default flight-recorder ring depth per node: deep enough to hold a
/// useful incident window, shallow enough that 64 nodes cost ~1.3 MB.
const FLIGHT_DEPTH_DEFAULT: usize = 256;

/// One request in the scenario's schedule.
#[derive(Debug, Clone)]
pub struct PlannedRequest {
    /// Arrival time.
    pub arrival: SimTime,
    /// Logical application slot (for per-application metrics).
    pub slot: usize,
    /// Workload class (application kind).
    pub class: WorkloadClass,
    /// Node the frontend runs on.
    pub node: NodeId,
    /// Owning tenant.
    pub tenant: TenantId,
    /// Tenant weight.
    pub weight: f64,
    /// Concurrency cap of the request's stream (finite server threads).
    pub server_threads: usize,
    /// The host program to execute.
    pub program: HostProgram,
}

#[derive(Debug)]
struct AppInstance {
    host: HostThread,
    class: WorkloadClass,
    node: NodeId,
    tenant: TenantId,
    weight: f64,
    slot: usize,
    gid: Option<Gid>,
    ctx: Option<ContextId>,
    stream: StreamId,
    /// Timestamp of this app's latest scheduled RPC delivery; deliveries
    /// are forced in-order per application (the paper's in-order RPC rule).
    last_deliver: SimTime,
    /// Bumped on every abort/failover; events stamped with an older
    /// incarnation are stale and dropped.
    incarnation: u32,
    /// Attempt number of the in-flight blocking RPC (0 when idle).
    attempt: u32,
    /// The blocking call awaiting a reply, kept for retransmission.
    inflight: Option<PackedCall>,
    /// Suffered a retry or failover replay (classified at completion).
    disrupted: bool,
    /// Crossed a degraded or partitioned link window.
    degraded: bool,
    /// Latency-attribution cursor: everything in `[arrival, attr_cursor)`
    /// has been charged to a stage. Charges are contiguous by
    /// construction, which makes the reconstructed breakdown exactly
    /// additive.
    attr_cursor: SimTime,
}

#[derive(Debug)]
enum Event {
    Arrival(u32),
    /// Host CPU phase ends (app, incarnation).
    HostWake(AppId, u32),
    /// A device's next self-event is due. Staleness is handled by the
    /// queue: the wakeup is scheduled under the device's [`EventKey`] and
    /// superseded entries die inside [`EventQueue::pop`].
    Device(u32),
    Epoch(u32),
    /// An RPC lands at the backend (app, call, incarnation).
    Deliver(AppId, PackedCall, u32),
    /// An RPC reply reaches the frontend (app, incarnation).
    Reply(AppId, u32),
    /// An injected fault fires: index into the run's [`FaultPlan`].
    Fault(u32),
    /// Per-call deadline for a blocking RPC (app, incarnation, attempt).
    Deadline(AppId, u32, u32),
    /// Backoff expired: retransmit the in-flight call.
    Retry(AppId, u32, u32),
    /// Failover complete: replay the program on a surviving backend.
    Restart(AppId, u32),
    /// Periodic metrics-registry sample (only when metrics are enabled).
    MetricsSample,
    /// Explicit flight-recorder dump trigger (`--dump-at T`; only
    /// scheduled when requested).
    DumpAt,
}

#[derive(Debug)]
struct Waiter {
    app: AppId,
    cond: BlockOn,
    /// Reply-path latency once the condition holds (0 in direct mode).
    reply_ns: u64,
    /// Direct (no RPC): wake the host in place instead of a Reply event.
    direct: bool,
}

/// Completed device work accumulated since a synchronization last consumed
/// it, used to decompose a blocked host's wall-clock wait into engine
/// queueing, engine service, and context-switch time. One window exists
/// per outstanding job, per stream, and per context; the matching window
/// is consumed when the wait on that condition releases.
#[derive(Debug, Clone, Copy)]
struct EngineWindow {
    first_start: SimTime,
    last_finish: SimTime,
    /// Busy nanoseconds per engine kind: `[compute, h2d, d2h]`.
    busy: [u64; 3],
}

impl EngineWindow {
    fn from_job(c: &CompletedJob) -> EngineWindow {
        let mut w = EngineWindow {
            first_start: c.started_at,
            last_finish: c.finished_at,
            busy: [0; 3],
        };
        w.busy[Self::kind_index(&c.job.kind)] = c.service_ns();
        w
    }

    fn kind_index(kind: &JobKind) -> usize {
        match kind {
            JobKind::Kernel(_) => 0,
            JobKind::Copy {
                dir: CopyDirection::HostToDevice,
                ..
            } => 1,
            JobKind::Copy {
                dir: CopyDirection::DeviceToHost,
                ..
            } => 2,
        }
    }

    fn merge(&mut self, c: &CompletedJob) {
        self.first_start = self.first_start.min(c.started_at);
        self.last_finish = self.last_finish.max(c.finished_at);
        self.busy[Self::kind_index(&c.job.kind)] += c.service_ns();
    }

    /// `(wait, service)` stages of the dominant engine kind in the window
    /// (a stream/context window can mix kinds; the interval is charged to
    /// whichever engine did the most work — exact for the common
    /// single-kind burst between synchronizations).
    fn stages(&self) -> (Stage, Stage) {
        let mut best = 0;
        for i in 1..3 {
            if self.busy[i] > self.busy[best] {
                best = i;
            }
        }
        match best {
            0 => (Stage::ComputeWait, Stage::ComputeService),
            1 => (Stage::H2dWait, Stage::H2dXfer),
            _ => (Stage::D2hWait, Stage::D2hXfer),
        }
    }
}

/// The executive.
pub struct World {
    cfg: StackConfig,
    scope: LbScope,
    costs: HostCosts,
    /// Inter-node network: answers "which channel joins these two nodes?".
    /// Boxed so exotic fabrics can be plugged in via
    /// [`World::set_network`]; scenarios install their declarative
    /// [`remoting::NetworkSpec`].
    net: Box<dyn NetworkModel + Send>,
    /// The cluster gPool, sharded per node. The global map drives device
    /// construction and failure bookkeeping; local-scope balancers see
    /// their node's shard (same global GIDs — no renumbering anywhere).
    gpool: ShardedGPool,
    devices: Vec<Device>,
    schedulers: Vec<GpuScheduler>,
    packers: Vec<ContextPacker>,
    device_apps: Vec<Vec<AppId>>,
    epoch_armed: Vec<bool>,
    /// Per-device: the last full [`World::apply_gating`] pass left the
    /// device idle, so as long as it stays idle and its app set does not
    /// change, each epoch tick re-derives the exact same (empty) awake set
    /// and gate state — [`World::on_epoch`] then takes a fast path that
    /// only rolls the LAS decay. Cleared whenever an app registers or
    /// unregisters on the device. Epochs dominate the event mix and most
    /// fire on idle devices, so this flag carries the DES hot path.
    epoch_idle_ok: Vec<bool>,
    shared_ctx: Vec<Option<ContextId>>,
    master_q: Vec<VecDeque<(AppId, PackedCall)>>,
    master_stall: Vec<Option<BlockOn>>,
    mappers: Vec<GpuAffinityMapper>,
    registry: ContextRegistry,
    pending: PendingOps,
    queue: EventQueue<Event>,
    /// One cancellable queue slot per device (wakeup self-events).
    dev_keys: Vec<EventKey>,
    /// Reusable completion buffer (avoids a fresh `Vec` per device sync).
    done_buf: Vec<CompletedJob>,
    /// Reusable epoch buffers: the dispatcher's work snapshot, the gate
    /// targets, and the awake set. Epochs dominate the event mix, so these
    /// keep the per-epoch path allocation-free.
    work_buf: Vec<AppWork>,
    gate_buf: Vec<(ContextId, StreamId, AppId)>,
    awake_buf: Vec<AppId>,
    /// Reusable released-waiter buffer for [`World::check_waiters`].
    ready_buf: Vec<Waiter>,
    apps: Vec<Option<AppInstance>>,
    waiters: Vec<Waiter>,
    requests: Vec<PlannedRequest>,
    /// Injected faults for this run (virtual-time-stamped, seeded).
    plan: FaultPlan,
    /// Failure-semantics RNG (backoff jitter); reseeded by the scenario.
    rng: SimRng,
    /// Nodes lost to `FaultKind::NodeLoss` (frontends there are dead).
    node_lost: Vec<bool>,
    /// Per-node partition window end (0 = not partitioned).
    partition_until: Vec<SimTime>,
    /// Per-node link degradation window: (end, slowdown factor).
    degrade: Vec<(SimTime, f64)>,
    slot_inflight: Vec<usize>,
    slot_backlog: Vec<VecDeque<usize>>,
    /// Serve-mode front door (None in batch scenarios: everything admits).
    admission: Option<AdmissionController>,
    /// Collect one [`SloRecord`] per completion (serve mode).
    request_log: bool,
    next_stream: u32,
    finished: usize,
    fairness_horizon: Option<SimTime>,
    stats: RunStats,
    /// Hard cap on processed events (runaway guard).
    max_events: u64,
    /// Structured trace recorder (off unless enabled by the scenario).
    tracer: Tracer,
    /// One track per request slot (async request spans live here).
    trk_slots: Vec<TrackId>,
    /// Executive-level track (counters, run-wide diagnostics).
    trk_sim: TrackId,
    /// Fault-injection track (injections, windows, gMap rebuilds).
    trk_faults: TrackId,
    /// Attribution windows awaiting a synchronization (recording only).
    /// Fx-hashed: one insert per device completion while attribution is
    /// on, and `attr_job` retains every never-awaited job to end of run —
    /// both make SipHash measurable against the attribution overhead gate.
    attr_job: FxHashMap<JobId, EngineWindow>,
    attr_stream: FxHashMap<(ContextId, StreamId), EngineWindow>,
    attr_ctx: FxHashMap<ContextId, EngineWindow>,
    /// Unified metrics registry (None unless `enable_metrics` was called).
    metrics: Option<MetricsRegistry>,
    /// Virtual-time metrics sampling cadence, ns.
    metrics_every: u64,
    /// Sample per-node rollup families too (opt-in: cluster topologies).
    node_metrics: bool,
    /// RPC-layer counters (always maintained; plain integer adds).
    rpc: RpcCounters,
    /// Always-on flight recorder: per-node rings of compact lifecycle
    /// records, snapshotted on triggers. Depth 0 disables (the
    /// overhead-gate baseline).
    flight: FlightRecorder,
    /// Per-request id of its latest flight record — the cause link the
    /// next record in the chain carries.
    flight_last: Vec<u64>,
    /// Burn-rate alert engine (None unless [`World::set_burn_alert`]).
    alerts: Option<BurnRateEngine>,
    /// Virtual time of the explicit dump trigger, if requested.
    dump_at: Option<SimTime>,
    /// Snapshot at end of run if no trigger fired (`--dump` without a
    /// fault ever materializing still yields a window).
    dump_final: bool,
    /// Request whose flight chain is captured verbatim into
    /// [`RunStats::explain_records`], immune to ring eviction.
    explain: Option<u64>,
    /// Record wall-clock per executive phase into
    /// [`RunStats::self_profile`].
    self_profile: bool,
}

impl World {
    /// Build a world from a topology, a scheduler stack, and a request
    /// schedule. The [`TopologySpec`] is the single source of truth for
    /// nodes, devices, and the inter-node network.
    pub fn new(
        topology: &TopologySpec,
        device_cfg: DeviceConfig,
        cfg: StackConfig,
        scope: LbScope,
        costs: HostCosts,
        requests: Vec<PlannedRequest>,
        fairness_horizon: Option<SimTime>,
    ) -> World {
        let nodes = topology.nodes();
        let gpool = ShardedGPool::build(nodes);
        let n = gpool.global().len();
        assert!(n > 0, "topology has no GPUs");
        let devices: Vec<Device> = gpool
            .global()
            .entries()
            .iter()
            .enumerate()
            .map(|(i, e)| {
                let mut d = Device::new(e.local, e.model.spec(), device_cfg);
                // Disjoint JobId ranges per device: the pending-op tracker
                // is keyed globally by JobId.
                d.set_job_id_base(i as u32 * 0x0100_0000);
                d
            })
            .collect();
        let schedulers = (0..n)
            .map(|_| GpuScheduler::new(cfg.gpu_policy, cfg.epoch.as_ns()))
            .collect();
        let packers = (0..n).map(|_| ContextPacker::new(cfg.packer)).collect();
        // Workload balancers: one global, or one per node (local scope).
        // Per-node balancers see their node's gPool shard, which keeps
        // cluster-wide GIDs — selections need no renumbering.
        let mut mappers = match (cfg.arbiter(), scope) {
            (None, _) => Vec::new(),
            (Some(arb), LbScope::Global) => vec![GpuAffinityMapper::new(gpool.global(), arb)],
            (Some(arb), LbScope::Local) => nodes
                .iter()
                .map(|node| {
                    GpuAffinityMapper::new(gpool.shard(node.id).expect("shard per node"), arb)
                })
                .collect(),
        };
        if let Some(cap) = topology.slices() {
            for m in &mut mappers {
                m.enable_slices(cap.units);
            }
        }
        let n_slots = requests.iter().map(|r| r.slot + 1).max().unwrap_or(1);
        let slot_inflight = vec![0; n_slots];
        let slot_backlog = (0..n_slots).map(|_| VecDeque::new()).collect();
        let mut queue = EventQueue::new();
        let dev_keys = (0..n).map(|_| queue.register_key()).collect();
        let mut world = World {
            cfg,
            scope,
            costs,
            net: Box::new(topology.network().clone()),
            gpool,
            devices,
            schedulers,
            packers,
            device_apps: vec![Vec::new(); n],
            epoch_armed: vec![false; n],
            epoch_idle_ok: vec![false; n],
            shared_ctx: vec![None; n],
            master_q: (0..n).map(|_| VecDeque::new()).collect(),
            master_stall: vec![None; n],
            mappers,
            registry: ContextRegistry::new(),
            pending: PendingOps::new(),
            queue,
            dev_keys,
            done_buf: Vec::new(),
            work_buf: Vec::new(),
            gate_buf: Vec::new(),
            awake_buf: Vec::new(),
            ready_buf: Vec::new(),
            apps: Vec::new(),
            waiters: Vec::new(),
            requests,
            plan: FaultPlan::none(),
            rng: SimRng::new(0x5EED_FA17),
            node_lost: vec![false; nodes.len()],
            partition_until: vec![0; nodes.len()],
            degrade: vec![(0, 1.0); nodes.len()],
            slot_inflight,
            slot_backlog,
            admission: None,
            request_log: false,
            next_stream: 1,
            finished: 0,
            fairness_horizon,
            stats: RunStats {
                completions: CompletionSet::new(n_slots),
                ..Default::default()
            },
            max_events: 500_000_000,
            tracer: Tracer::off(),
            trk_slots: Vec::new(),
            trk_sim: TrackId::INVALID,
            trk_faults: TrackId::INVALID,
            attr_job: FxHashMap::default(),
            attr_stream: FxHashMap::default(),
            attr_ctx: FxHashMap::default(),
            metrics: None,
            metrics_every: 0,
            node_metrics: false,
            rpc: RpcCounters::default(),
            flight: FlightRecorder::new(nodes.len(), FLIGHT_DEPTH_DEFAULT),
            flight_last: Vec::new(),
            alerts: None,
            dump_at: None,
            dump_final: false,
            explain: None,
            self_profile: false,
        };
        // Design II/III backends own one context per GPU, created when the
        // backend daemons spawn at gPool creation (before any request).
        if world.cfg.design.shares_context() {
            for gid in 0..world.devices.len() {
                let pid = world.cfg.design.backend_process(AppId(0), gid);
                let (ctx, fresh) = world.registry.get_or_create(pid, gid);
                debug_assert!(fresh);
                world.devices[gid].create_context(ctx);
                world.shared_ctx[gid] = Some(ctx);
            }
        }
        world
    }

    /// Replace the inter-node network model. Scenarios install their
    /// topology's declarative [`remoting::NetworkSpec`]; custom
    /// [`NetworkModel`] implementations (oversubscribed switches, WAN
    /// links) plug in here. Call before [`World::run`].
    pub fn set_network(&mut self, net: Box<dyn NetworkModel + Send>) {
        self.net = net;
    }

    /// Turn on structured tracing: every device engine, scheduler, mapper
    /// and request slot gets a track, and the run's [`RunStats::trace`]
    /// carries the recorded [`sim_core::trace::Trace`]. Call before
    /// [`World::run`].
    pub fn enable_tracing(&mut self) {
        let tracer = Tracer::buffered();
        self.trk_sim = tracer.track("sim", "executive");
        self.trk_faults = tracer.track("sim", "faults");
        // Cluster runs (3+ nodes) prefix device tracks with their node so
        // a 64×4 trace is filterable per node in Perfetto. The paper's
        // single-node/supernode topologies keep the historical bare
        // `GID{g}` names (pinned by fig02's glitch query and the
        // committed goldens).
        let device_names: Vec<String> = if self.node_lost.len() > 2 {
            (0..self.devices.len())
                .map(|gid| format!("node{}/GID{gid}", self.dev_node(Gid(gid as u32)).0))
                .collect()
        } else {
            (0..self.devices.len()).map(|g| format!("GID{g}")).collect()
        };
        for (gid, d) in self.devices.iter_mut().enumerate() {
            d.set_tracer(tracer.clone(), &device_names[gid]);
        }
        for (gid, s) in self.schedulers.iter_mut().enumerate() {
            let trk = tracer.track(device_names[gid].clone(), "scheduler");
            s.set_tracer(tracer.clone(), trk);
        }
        for (i, m) in self.mappers.iter_mut().enumerate() {
            let trk = tracer.track("balancer", format!("mapper{i}"));
            m.set_tracer(tracer.clone(), trk);
        }
        self.make_slot_tracks(&tracer);
        self.tracer = tracer;
    }

    /// One track per request slot; label it with the slot's class.
    fn make_slot_tracks(&mut self, tracer: &Tracer) {
        let n_slots = self.slot_inflight.len();
        self.trk_slots = (0..n_slots)
            .map(|slot| {
                let class = self
                    .requests
                    .iter()
                    .find(|r| r.slot == slot)
                    .map(|r| format!(" {}", r.class))
                    .unwrap_or_default();
                tracer.track("requests", format!("slot{slot}{class}"))
            })
            .collect();
    }

    /// Turn on the lightweight latency-attribution recorder: only the
    /// executive and per-request-slot tracks exist, and the executive
    /// emits request spans plus `stage` charge marks — exactly what
    /// [`strings_metrics::attribution::AttributionReport`] needs, without
    /// paying for full device/scheduler/mapper tracing. A no-op when
    /// [`World::enable_tracing`] already ran (full traces are a
    /// superset).
    pub fn enable_attribution(&mut self) {
        if self.tracer.is_on() {
            return;
        }
        let tracer = Tracer::buffered();
        self.trk_sim = tracer.track("sim", "executive");
        self.trk_faults = tracer.track("sim", "faults");
        self.make_slot_tracks(&tracer);
        self.tracer = tracer;
    }

    /// Install the unified metrics registry, sampled every `every` of
    /// virtual time and once more at the end of the run. Families cover
    /// every layer: executive event-loop counters, per-device telemetry,
    /// outstanding-op gauges, RPC counters, and the end-to-end latency
    /// histogram. The registry lands in [`RunStats::metrics`].
    pub fn enable_metrics(&mut self, every: SimDuration) {
        use MetricKind::{Counter, Gauge, Histogram};
        let mut m = MetricsRegistry::new();
        m.register("sim_virtual_time_ns", Gauge, "Virtual time of the sample");
        m.register(
            "sim_events_total",
            Counter,
            "Events dispatched by the executive",
        );
        m.register(
            "sim_queue_peak_depth",
            Gauge,
            "High-water mark of the event queue",
        );
        m.register(
            "requests_completed_total",
            Counter,
            "Requests finished (any outcome)",
        );
        m.register("requests_failed_total", Counter, "Requests lost to faults");
        m.register("requests_shed_total", Counter, "Requests shed at admission");
        m.register(
            "gpu_compute_occupancy",
            Gauge,
            "SM occupancy per device (0..1)",
        );
        m.register(
            "gpu_copy_busy",
            Gauge,
            "Copy-engine busy fraction per device (0..1)",
        );
        m.register(
            "gpu_context_switches_total",
            Counter,
            "Context switches per device",
        );
        m.register(
            "gpu_kernels_completed_total",
            Counter,
            "Kernels completed per device",
        );
        m.register(
            "gpu_copies_completed_total",
            Counter,
            "Copies completed per device",
        );
        m.register("cuda_pending_jobs", Gauge, "Outstanding device jobs");
        m.register(
            "cuda_contexts_active",
            Gauge,
            "Contexts with outstanding work",
        );
        m.register(
            "cuda_streams_active",
            Gauge,
            "Streams with outstanding work",
        );
        m.register("rpc_sent_total", Counter, "RPCs shipped toward backends");
        m.register("rpc_delivered_total", Counter, "RPCs landed at backends");
        m.register(
            "rpc_replies_total",
            Counter,
            "RPC replies received by frontends",
        );
        m.register("rpc_dropped_total", Counter, "RPCs dropped by partitions");
        m.register("rpc_bytes_total", Counter, "Marshalled RPC bytes shipped");
        m.register(
            "rpc_in_flight",
            Gauge,
            "RPCs sent but not yet delivered or dropped",
        );
        m.register(
            "request_latency_ns",
            Histogram,
            "End-to-end request latency",
        );
        self.metrics = Some(m);
        self.metrics_every = every.as_ns().max(1);
    }

    /// Opt into per-node rollup families (cluster topologies): live
    /// devices, kernel/copy completions, and mean compute occupancy per
    /// node, labelled `node="N"`. Must follow [`World::enable_metrics`].
    /// The default family set is untouched, so single-node and supernode
    /// expositions stay byte-identical when this is off.
    pub fn enable_node_metrics(&mut self) {
        use MetricKind::{Counter, Gauge};
        let m = self
            .metrics
            .as_mut()
            .expect("enable_metrics before enable_node_metrics");
        m.register("node_devices_live", Gauge, "Live devices per node");
        m.register(
            "node_kernels_completed_total",
            Counter,
            "Kernels completed per node",
        );
        m.register(
            "node_copies_completed_total",
            Counter,
            "Copies completed per node",
        );
        m.register(
            "node_compute_occupancy",
            Gauge,
            "Mean SM occupancy over a node's devices (0..1)",
        );
        self.node_metrics = true;
    }

    /// Schedule a backend-process crash on device `gid` at time `at`
    /// (fault-injection experiments; interposed modes only).
    pub fn inject_fault(&mut self, at: SimTime, gid: usize) {
        assert!(gid < self.devices.len());
        self.plan
            .push(at, FaultKind::BackendCrash { gid: gid as u32 });
    }

    /// Install a full fault plan (merged with any previously injected
    /// faults). Targets are validated against the topology up front so a
    /// bad plan fails loudly before the run starts.
    pub fn set_fault_plan(&mut self, plan: &FaultPlan) {
        for ev in plan.events() {
            let ok = match ev.kind {
                FaultKind::BackendCrash { gid } | FaultKind::DeviceFailure { gid } => {
                    (gid as usize) < self.devices.len()
                }
                FaultKind::NodeLoss { node }
                | FaultKind::LinkDegraded { node, .. }
                | FaultKind::Partition { node, .. } => (node as usize) < self.node_lost.len(),
            };
            assert!(ok, "fault plan references unknown target: {}", ev.kind);
            self.plan.push(ev.at, ev.kind);
        }
    }

    /// Seed the failure-semantics RNG (backoff jitter). The scenario
    /// passes its own seed through so whole runs stay reproducible.
    pub fn set_seed(&mut self, seed: u64) {
        self.rng = SimRng::new(seed ^ 0x5EED_FA17);
    }

    /// Install the serve-mode admission front door. Every arrival is
    /// checked against its tenant's queue bound and token bucket before a
    /// host thread is created; shed requests finish immediately and count
    /// in [`RunStats::shed_requests`]. Tenant ids in the request schedule
    /// must be dense in `0..tenants`.
    pub fn set_admission(&mut self, tenants: usize, config: AdmissionConfig) {
        self.admission = Some(AdmissionController::new(tenants, config));
    }

    /// Record one [`SloRecord`] per completed request into
    /// [`RunStats::slo_records`] (serve mode; batch experiments skip the
    /// per-request log to keep RunStats small).
    pub fn enable_request_log(&mut self) {
        self.request_log = true;
    }

    /// Resize the flight recorder's per-node rings. The recorder is
    /// always on at a default depth; `0` disables it entirely (the
    /// bench overhead gate's baseline). Call before [`World::run`].
    pub fn set_flight_depth(&mut self, depth: usize) {
        self.flight = FlightRecorder::new(self.node_lost.len(), depth);
    }

    /// Install a burn-rate alert rule. Every terminal request outcome
    /// (completion, shed, abort, drop) feeds the engine; FIRED
    /// transitions trigger a flight-recorder dump, and the end-of-run
    /// [`strings_metrics::alerts::AlertReport`] lands in
    /// [`RunStats::alerts`]. When metrics are enabled (call
    /// [`World::enable_metrics`] first), the current burn rates are
    /// exported as `slo_burn_*` gauges.
    pub fn set_burn_alert(&mut self, cfg: BurnRateConfig) {
        if let Some(m) = self.metrics.as_mut() {
            use MetricKind::{Counter, Gauge};
            m.register(
                "slo_burn_short",
                Gauge,
                "Error-budget burn rate over the short window",
            );
            m.register(
                "slo_burn_long",
                Gauge,
                "Error-budget burn rate over the long window",
            );
            m.register(
                "slo_alerts_fired_total",
                Counter,
                "Burn-rate alert FIRED transitions",
            );
        }
        self.alerts = Some(BurnRateEngine::new(cfg));
    }

    /// Schedule an explicit flight-recorder dump at virtual time `at`
    /// (the CLI's `--dump-at`).
    pub fn set_dump_at(&mut self, at: SimTime) {
        self.dump_at = Some(at);
    }

    /// Take an end-of-run snapshot if no trigger fired during the run,
    /// so `--dump PATH` always has a window to write.
    pub fn set_dump_final(&mut self) {
        self.dump_final = true;
    }

    /// Capture request `req`'s complete flight-record chain into
    /// [`RunStats::explain_records`], bypassing ring eviction — the
    /// `strings-sim explain` data source.
    pub fn set_explain(&mut self, req: u64) {
        self.explain = Some(req);
    }

    /// Record wall-clock spent per executive phase into
    /// [`RunStats::self_profile`] (bench trajectory only; wall-clock
    /// never reaches a golden surface).
    pub fn enable_self_profile(&mut self) {
        self.self_profile = true;
    }

    /// Write one flight record, maintaining the request's cause chain.
    /// `node` is the ring the record lands in (the frontend's node for
    /// request-scoped records); `request` is [`NO_ID`] for run-scoped
    /// ones.
    #[inline]
    fn flight(&mut self, node: NodeId, kind: FlightKind, request: u64, a: u64, b: u64) {
        if !self.flight.is_on() {
            return;
        }
        let cause = if request != NO_ID {
            self.flight_last
                .get(request as usize)
                .copied()
                .unwrap_or(NO_ID)
        } else {
            NO_ID
        };
        let rec = FlightRecord {
            at: self.queue.now(),
            node: node.0,
            kind,
            request,
            a,
            b,
            id: 0,
            cause,
            ev: self.queue.current_id().0,
            ev_cause: self.queue.current_cause().0,
        };
        let id = self.flight.record(rec);
        if request != NO_ID {
            if let Some(last) = self.flight_last.get_mut(request as usize) {
                *last = id;
            }
        }
        if self.explain == Some(request) {
            self.stats.explain_records.push(FlightRecord { id, ..rec });
        }
    }

    /// Feed one terminal outcome to the alert engine and consume any
    /// transitions it produced (FIRED transitions dump the recorder).
    fn observe_outcome(&mut self, now: SimTime, bad: bool) {
        let Some(eng) = self.alerts.as_mut() else {
            return;
        };
        eng.observe(now, bad);
        self.drain_alert_transitions();
    }

    /// Consume pending alert transitions: each lands in the flight
    /// recorder, and FIRED transitions trip an alert-class dump.
    fn drain_alert_transitions(&mut self) {
        while let Some(t) = self.alerts.as_mut().and_then(|e| e.pop_pending()) {
            let fired = u64::from(t.fired);
            let burn = (t.short_burn * 100.0) as u64;
            self.flight(NodeId(0), FlightKind::Alert, NO_ID, fired, burn);
            if t.fired {
                self.flight.trigger(DumpReason::Alert, t.at);
            }
        }
    }

    /// Run to completion and return the statistics.
    pub fn run(mut self) -> RunStats {
        let wall_start = std::time::Instant::now();
        self.apps = (0..self.requests.len()).map(|_| None).collect();
        if self.flight.is_on() {
            self.flight_last = vec![NO_ID; self.requests.len()];
        }
        for (i, r) in self.requests.iter().enumerate() {
            self.queue.schedule(r.arrival, Event::Arrival(i as u32));
        }
        for (i, ev) in self.plan.events().iter().enumerate() {
            self.queue.schedule(ev.at, Event::Fault(i as u32));
        }
        if let Some(at) = self.dump_at {
            self.queue.schedule(at, Event::DumpAt);
        }
        if self.metrics.is_some() && !self.queue.is_empty() {
            self.queue
                .schedule(self.metrics_every, Event::MetricsSample);
        }
        let mut prof = PhaseProfile::default();
        loop {
            // The profiled pop/dispatch paths measure wall-clock around
            // the exact same calls the unprofiled paths make, so enabling
            // the self-profiler cannot perturb virtual-time behaviour.
            let next = if self.self_profile {
                let t0 = std::time::Instant::now();
                let popped = self.queue.pop();
                prof.queue_ns += t0.elapsed().as_nanos() as u64;
                popped
            } else {
                self.queue.pop()
            };
            let Some((now, ev)) = next else {
                break;
            };
            assert!(
                self.queue.popped() < self.max_events,
                "event budget exhausted at t={now}: likely livelock"
            );
            if self.self_profile {
                let slot = Self::profile_slot(&ev);
                let t0 = std::time::Instant::now();
                self.dispatch(now, ev);
                let dt = t0.elapsed().as_nanos() as u64;
                *match slot {
                    0 => &mut prof.arrival_ns,
                    1 => &mut prof.host_ns,
                    2 => &mut prof.engine_ns,
                    3 => &mut prof.epoch_ns,
                    4 => &mut prof.rpc_ns,
                    5 => &mut prof.fault_ns,
                    _ => &mut prof.metrics_ns,
                } += dt;
            } else {
                self.dispatch(now, ev);
            }
            if self.finished == self.requests.len() {
                break;
            }
        }
        if self.finished != self.requests.len() {
            for w in &self.waiters {
                eprintln!(
                    "stuck waiter: app={:?} cond={:?} direct={}",
                    w.app, w.cond, w.direct
                );
            }
            for (i, a) in self.apps.iter().enumerate() {
                if let Some(a) = a {
                    if !a.host.is_done() {
                        eprintln!(
                            "stuck app {i}: state={:?} pc={} op={:?} gid={:?} ctx={:?} stream={:?}",
                            a.host.state,
                            a.host.pc,
                            a.host.current_op(),
                            a.gid,
                            a.ctx,
                            a.stream
                        );
                    }
                }
            }
            for (g, d) in self.devices.iter().enumerate() {
                eprintln!(
                    "device {g}: pending={} idle={} next={:?}",
                    d.total_pending(),
                    d.is_idle(),
                    d.next_event_time(self.queue.now())
                );
            }
            panic!(
                "deadlock: {} of {} finished",
                self.finished,
                self.requests.len()
            );
        }
        // Includes stale wakeups cancelled in-queue: they count exactly as
        // they did when the dispatcher popped and discarded them.
        self.stats.events = self.queue.popped();
        self.stats.cancelled_wakeups = self.queue.cancelled();
        self.stats.stale_pops = self.queue.stale_pops();
        self.stats.peak_queue_depth = self.queue.peak_len() as u64;
        self.stats.peak_live_queue_depth = self.queue.peak_live_len() as u64;
        self.stats.completed_requests = self.finished as u64;
        self.stats.device_telemetry = self.devices.iter().map(|d| d.telemetry.clone()).collect();
        self.stats.context_switches = self
            .devices
            .iter()
            .map(|d| d.telemetry.context_switches)
            .sum();
        self.stats.clamped_events = self.queue.clamped();
        if let Some(adm) = &self.admission {
            self.stats.admission = Some(adm.stats());
        }
        if self.alerts.is_some() {
            // Close the burn-rate windows at end-of-run virtual time so
            // trailing transitions (and their dump triggers) are not lost,
            // and so the final metrics sample exports the final burns.
            let end = self.queue.now();
            self.alerts.as_mut().expect("checked").finish(end);
            self.drain_alert_transitions();
        }
        if self.metrics.is_some() {
            self.sample_metrics(self.queue.now());
            self.stats.metrics = self.metrics.take();
        }
        if self.alerts.is_some() {
            self.stats.alerts = Some(self.alerts.take().expect("checked").report());
        }
        if self.flight.is_on() {
            self.stats.flight_dumps = self.flight.take_dumps();
            if self.dump_final && self.stats.flight_dumps.is_empty() {
                // `--dump PATH` with a clean run: snapshot the tail window
                // so there is always something to write.
                self.stats
                    .flight_dumps
                    .push(self.flight.snapshot(DumpReason::Explicit, self.queue.now()));
            }
            self.stats.flight_triggers = self.flight.trigger_counts();
            self.stats.flight_recorded = self.flight.recorded();
        }
        if self.self_profile {
            prof.wall_ns = wall_start.elapsed().as_nanos() as u64;
            self.stats.self_profile = Some(prof);
        }
        if self.tracer.is_on() {
            if let Some(adm) = self.stats.admission {
                let now = self.queue.now();
                self.tracer
                    .counter(self.trk_sim, now, "admitted", adm.admitted as f64);
                self.tracer.counter(
                    self.trk_sim,
                    now,
                    "shed_queue_full",
                    adm.shed_queue_full as f64,
                );
                self.tracer.counter(
                    self.trk_sim,
                    now,
                    "shed_rate_limited",
                    adm.shed_rate_limited as f64,
                );
                // Only emitted when the SLO gate actually fired, so traces
                // from runs without an SLO config are byte-unchanged.
                if adm.shed_slo > 0 {
                    self.tracer
                        .counter(self.trk_sim, now, "shed_slo", adm.shed_slo as f64);
                }
            }
        }
        if self.tracer.is_on() {
            self.tracer.counter(
                self.trk_sim,
                self.queue.now(),
                "clamped_schedules",
                self.stats.clamped_events as f64,
            );
            self.tracer.counter(
                self.trk_sim,
                self.queue.now(),
                "cancelled_wakeups",
                self.stats.cancelled_wakeups as f64,
            );
            self.tracer.counter(
                self.trk_sim,
                self.queue.now(),
                "stale_pops",
                self.stats.stale_pops as f64,
            );
            self.stats.trace = self.tracer.finish();
        }
        self.stats
    }

    /// Dispatch one popped event. Extracted from the run loop so the
    /// self-profiler can time each dispatch; early exits that were
    /// `continue`s in the loop body are plain returns here.
    fn dispatch(&mut self, now: SimTime, ev: Event) {
        match ev {
            Event::Arrival(idx) => self.on_arrival(idx as usize, now),
            Event::HostWake(app, inc) => {
                if !self.live_incarnation(app, inc) {
                    return; // raced an abort or a failover replay
                }
                let a = self.app_mut(app);
                a.host.wake_and_advance(now);
                self.after_host_step(app, now);
                self.run_host(app, now);
            }
            Event::Device(gid) => self.sync_device(gid as usize, now),
            Event::Epoch(gid) => self.on_epoch(gid as usize, now),
            Event::Fault(idx) => self.on_plan_fault(idx as usize, now),
            Event::Deliver(app, packed, inc) => {
                if !self.live_incarnation(app, inc) {
                    return; // packet outlived its sender
                }
                self.on_deliver(app, packed, now);
            }
            Event::Reply(app, inc) => {
                if !self.live_incarnation(app, inc) {
                    return; // reply raced an injected fault
                }
                self.rpc.replies += 1;
                if self.flight.is_on() {
                    let (node, gid) = {
                        let a = self.app(app);
                        (a.node, a.gid)
                    };
                    self.flight(
                        node,
                        FlightKind::RpcReply,
                        app.index() as u64,
                        gid.map_or(NO_ID, |g| g.index() as u64),
                        0,
                    );
                }
                let a = self.app_mut(app);
                a.inflight = None;
                a.attempt = 0;
                debug_assert!(matches!(
                    a.host.state,
                    cuda_sim::host::HostState::Blocked(_)
                ));
                a.host.wake_and_advance(now);
                self.after_host_step(app, now);
                self.run_host(app, now);
            }
            Event::Deadline(app, inc, attempt) => {
                if !self.live_incarnation(app, inc) {
                    return;
                }
                let a = self.app(app);
                if a.attempt != attempt || a.inflight.is_none() {
                    return; // the reply won the race
                }
                self.on_rpc_timeout(app, now);
            }
            Event::Retry(app, inc, attempt) => {
                if !self.live_incarnation(app, inc) {
                    return;
                }
                let a = self.app(app);
                if a.attempt != attempt {
                    return;
                }
                let Some(packed) = a.inflight else {
                    return;
                };
                self.send_rpc(app, packed, true, now);
            }
            Event::Restart(app, inc) => {
                if !self.live_incarnation(app, inc) {
                    return; // a later fault overtook the failover
                }
                self.on_restart(app, now);
            }
            Event::MetricsSample => {
                self.sample_metrics(now);
                // Re-arm only while other work remains so the run can
                // drain; the end-of-run sample closes the series.
                if !self.queue.is_empty() {
                    self.queue
                        .schedule(now + self.metrics_every, Event::MetricsSample);
                }
            }
            Event::DumpAt => self.flight.trigger(DumpReason::Explicit, now),
        }
    }

    /// Which [`PhaseProfile`] bucket an event's dispatch time lands in:
    /// 0 arrival, 1 host, 2 engine, 3 epoch, 4 rpc, 5 fault, 6 metrics.
    fn profile_slot(ev: &Event) -> u8 {
        match ev {
            Event::Arrival(_) => 0,
            Event::HostWake(..) | Event::Reply(..) => 1,
            Event::Device(_) => 2,
            Event::Epoch(_) => 3,
            Event::Deliver(..) | Event::Deadline(..) | Event::Retry(..) | Event::Restart(..) => 4,
            Event::Fault(_) => 5,
            Event::MetricsSample | Event::DumpAt => 6,
        }
    }

    // ---- helpers --------------------------------------------------------

    fn app(&self, id: AppId) -> &AppInstance {
        self.apps[id.index()].as_ref().expect("app exists")
    }

    fn app_mut(&mut self, id: AppId) -> &mut AppInstance {
        self.apps[id.index()].as_mut().expect("app exists")
    }

    /// True when `app` is alive and `inc` is its current incarnation.
    /// Events carry the incarnation they were scheduled under; anything
    /// older raced an abort or failover and must be dropped.
    fn live_incarnation(&self, app: AppId, inc: u32) -> bool {
        self.apps
            .get(app.index())
            .and_then(|a| a.as_ref())
            .is_some_and(|a| a.incarnation == inc && !a.host.is_done())
    }

    fn outcome(&mut self, tenant: TenantId) -> &mut TenantOutcomes {
        self.stats.tenant_outcomes.entry(tenant).or_default()
    }

    /// Charge `app`'s wall clock from its attribution cursor up to
    /// `until` to `stage`, advancing the cursor. Successive charges tile
    /// the request's lifetime with no gaps or overlaps, so the per-stage
    /// breakdown reconstructed from the trace is exactly additive. No-op
    /// while recording is off or when the window is empty.
    fn charge_stage(&mut self, app: AppId, stage: Stage, until: SimTime) {
        if !self.tracer.is_on() {
            return;
        }
        let (slot, from) = {
            let a = self.app_mut(app);
            let from = a.attr_cursor;
            if until <= from {
                return;
            }
            a.attr_cursor = until;
            (a.slot, from)
        };
        self.tracer
            .stage_charge(self.trk_slots[slot], until, app.index() as u64, stage, from);
    }

    /// A blocked wait on `cond` released at `rel`: decompose the elapsed
    /// window into context-switch glitch time, engine queue wait, and
    /// engine service using the completed-work window recorded for the
    /// condition, then drain any residue to `Other`.
    fn charge_wait_release(&mut self, app: AppId, cond: BlockOn, rel: SimTime) {
        if !self.tracer.is_on() {
            return;
        }
        let win = match cond {
            BlockOn::Job(j) => self.attr_job.remove(&j),
            BlockOn::StreamIdle(c, s) => self.attr_stream.remove(&(c, s)),
            BlockOn::CtxIdle(c) => self.attr_ctx.remove(&c),
            BlockOn::Reply(_) => None,
        };
        let Some(win) = win else {
            // No recorded device work (e.g. a co-tenant's sync already
            // consumed the shared window): the wait is unattributable.
            self.charge_stage(app, Stage::Other, rel);
            return;
        };
        let cursor = self.app(app).attr_cursor;
        let s = win.first_start.clamp(cursor, rel);
        let f = win.last_finish.clamp(s, rel);
        // Driver context-switch time between the cursor and the work's
        // start is a switching glitch, not engine queueing.
        let sw = match self.app(app).gid {
            Some(gid) if s > cursor => self.devices[gid.index()]
                .telemetry
                .switching
                .busy_ns(cursor, s),
            _ => 0,
        };
        let (wait_stage, svc_stage) = win.stages();
        self.charge_stage(app, Stage::CtxSwitch, (cursor + sw).min(s));
        self.charge_stage(app, wait_stage, s);
        self.charge_stage(app, svc_stage, f);
        self.charge_stage(app, Stage::Other, rel);
    }

    /// Push the current state of every layer into the metrics registry
    /// and capture one snapshot stamped `now`.
    fn sample_metrics(&mut self, now: SimTime) {
        let Some(mut m) = self.metrics.take() else {
            return;
        };
        m.set("sim_virtual_time_ns", &[], now as f64);
        m.set("sim_events_total", &[], self.queue.popped() as f64);
        m.set("sim_queue_peak_depth", &[], self.queue.peak_len() as f64);
        m.set("requests_completed_total", &[], self.finished as f64);
        m.set(
            "requests_failed_total",
            &[],
            self.stats.failed_requests as f64,
        );
        m.set("requests_shed_total", &[], self.stats.shed_requests as f64);
        for (gid, d) in self.devices.iter().enumerate() {
            let g = gid.to_string();
            let l: &[(&str, &str)] = &[("gid", g.as_str())];
            let t = &d.telemetry;
            m.set("gpu_compute_occupancy", l, t.compute.level_at(now));
            m.set("gpu_copy_busy", l, t.copy.level_at(now));
            m.set("gpu_context_switches_total", l, t.context_switches as f64);
            m.set("gpu_kernels_completed_total", l, t.kernels_completed as f64);
            m.set("gpu_copies_completed_total", l, t.copies_completed as f64);
        }
        if self.node_metrics {
            for (node, shard) in self.gpool.shards() {
                let n = node.0.to_string();
                let l: &[(&str, &str)] = &[("node", n.as_str())];
                let (mut kernels, mut copies, mut occ) = (0u64, 0u64, 0.0f64);
                for e in shard.entries() {
                    let t = &self.devices[e.gid.index()].telemetry;
                    kernels += t.kernels_completed;
                    copies += t.copies_completed;
                    occ += t.compute.level_at(now);
                }
                m.set("node_devices_live", l, shard.live_len() as f64);
                m.set("node_kernels_completed_total", l, kernels as f64);
                m.set("node_copies_completed_total", l, copies as f64);
                m.set("node_compute_occupancy", l, occ / shard.len().max(1) as f64);
            }
        }
        m.set("cuda_pending_jobs", &[], self.pending.total() as f64);
        m.set(
            "cuda_contexts_active",
            &[],
            self.pending.contexts_active() as f64,
        );
        m.set(
            "cuda_streams_active",
            &[],
            self.pending.streams_active() as f64,
        );
        m.set("rpc_sent_total", &[], self.rpc.sent as f64);
        m.set("rpc_delivered_total", &[], self.rpc.delivered as f64);
        m.set("rpc_replies_total", &[], self.rpc.replies as f64);
        m.set("rpc_dropped_total", &[], self.rpc.dropped as f64);
        m.set("rpc_bytes_total", &[], self.rpc.bytes as f64);
        m.set("rpc_in_flight", &[], self.rpc.in_flight() as f64);
        if let Some(eng) = self.alerts.as_ref() {
            let (short, long) = eng.current_burns();
            m.set("slo_burn_short", &[], short);
            m.set("slo_burn_long", &[], long);
            m.set("slo_alerts_fired_total", &[], eng.fired_total() as f64);
        }
        m.snapshot(now);
        self.metrics = Some(m);
    }

    /// Schedule a reply stamped with the app's current incarnation.
    fn schedule_reply(&mut self, app: AppId, at: SimTime) {
        let inc = self.app(app).incarnation;
        self.queue.schedule(at, Event::Reply(app, inc));
    }

    /// Schedule a host wake-up stamped with the current incarnation.
    fn schedule_wake(&mut self, app: AppId, at: SimTime) {
        let inc = self.app(app).incarnation;
        self.queue.schedule(at, Event::HostWake(app, inc));
    }

    /// When the `a`↔`b` link is partitioned at `now`, the virtual time the
    /// window heals; 0 otherwise. Same-node traffic never partitions.
    fn link_partition_heal(&self, a: NodeId, b: NodeId, now: SimTime) -> SimTime {
        if a == b {
            return 0;
        }
        let until = |n: NodeId| self.partition_until.get(n.0 as usize).copied().unwrap_or(0);
        let h = until(a).max(until(b));
        if h > now {
            h
        } else {
            0
        }
    }

    /// Cross-node transfer slowdown factor at `now` (1.0 = healthy).
    fn link_factor(&self, a: NodeId, b: NodeId, now: SimTime) -> f64 {
        if a == b {
            return 1.0;
        }
        let f = |n: NodeId| {
            self.degrade
                .get(n.0 as usize)
                .map_or(1.0, |(until, fac)| if *until > now { *fac } else { 1.0 })
        };
        f(a).max(f(b)).max(1.0)
    }

    /// Hosting node of a device.
    fn dev_node(&self, gid: Gid) -> NodeId {
        self.gpool.global().entry(gid).expect("gid in gmap").node
    }

    fn channel(&self, node: NodeId, gid: Gid) -> ChannelSpec {
        self.net.channel(node, self.dev_node(gid))
    }

    /// Bulk copy payloads cross the *network* channel byte for byte, but a
    /// same-node frontend/backend pair passes buffers through shared memory
    /// zero-copy — only the control message is marshalled.
    fn bulk_bytes(&self, node: NodeId, gid: Gid, bytes: u64) -> u64 {
        if self.dev_node(gid) == node {
            0
        } else {
            bytes
        }
    }

    fn on_arrival(&mut self, idx: usize, now: SimTime) {
        let (tenant, node) = {
            let r = &self.requests[idx];
            (r.tenant, r.node)
        };
        self.flight(
            node,
            FlightKind::Arrival,
            idx as u64,
            tenant.0 as u64,
            node.0 as u64,
        );
        let r = &self.requests[idx];
        if self.node_lost[r.node.0 as usize] {
            // The frontend's node is gone: the request is lost on arrival.
            let tenant = r.tenant;
            self.stats.failed_requests += 1;
            self.finished += 1;
            self.outcome(tenant).lost += 1;
            self.flight(
                node,
                FlightKind::Lost,
                idx as u64,
                tenant.0 as u64,
                node.0 as u64,
            );
            self.observe_outcome(now, true);
            if self.tracer.is_on() {
                self.tracer.instant(
                    self.trk_faults,
                    now,
                    "arrival_dropped",
                    vec![("request", idx.to_string())],
                );
            }
            return;
        }
        let slot = r.slot;
        if let Some(adm) = self.admission.as_mut() {
            let tenant = self.requests[idx].tenant;
            if let Err(reason) = adm.try_admit(tenant.0 as usize, now) {
                // Shed at the front door: the request never enters the
                // system and finishes immediately.
                self.stats.shed_requests += 1;
                self.finished += 1;
                self.flight(
                    node,
                    FlightKind::Shed,
                    idx as u64,
                    tenant.0 as u64,
                    reason.code(),
                );
                self.observe_outcome(now, true);
                if self.tracer.is_on() {
                    self.tracer.instant(
                        self.trk_sim,
                        now,
                        "shed",
                        vec![
                            ("request", idx.to_string()),
                            ("tenant", tenant.to_string()),
                            ("reason", reason.to_string()),
                        ],
                    );
                }
                return;
            }
        }
        let r = &self.requests[idx];
        if self.tracer.is_on() {
            // The request span opens at arrival so it covers server-queue
            // wait; spans on a slot track overlap, hence the async id.
            self.tracer.span_begin(
                self.trk_slots[slot],
                now,
                "request",
                Some(idx as u64),
                vec![
                    ("tenant", r.tenant.to_string()),
                    ("class", r.class.to_string()),
                    ("node", r.node.to_string()),
                ],
            );
        }
        if self.slot_inflight[slot] >= r.server_threads {
            // All server threads busy: the request waits in the server
            // queue; its completion time still counts from arrival.
            self.slot_backlog[slot].push_back(idx);
            return;
        }
        self.start_request(idx, now);
    }

    fn start_request(&mut self, idx: usize, now: SimTime) {
        let r = &self.requests[idx];
        if self.node_lost[r.node.0 as usize] {
            // Queued behind a server thread when its node died.
            let (slot, tenant, node) = (r.slot, r.tenant, r.node);
            self.stats.failed_requests += 1;
            self.finished += 1;
            self.outcome(tenant).lost += 1;
            self.flight(
                node,
                FlightKind::Lost,
                idx as u64,
                tenant.0 as u64,
                node.0 as u64,
            );
            self.observe_outcome(now, true);
            if let Some(adm) = self.admission.as_mut() {
                adm.release(tenant.0 as usize);
            }
            if self.tracer.is_on() {
                self.tracer
                    .span_end(self.trk_slots[slot], now, "request", Some(idx as u64));
            }
            if let Some(next) = self.slot_backlog[slot].pop_front() {
                self.start_request(next, now);
            }
            return;
        }
        let app = AppId(idx as u32);
        let mut host = HostThread::new(
            app,
            ProcessId(HOST_PID_BASE + idx as u32),
            r.program.clone(),
            now,
        );
        host.arrived_at = r.arrival; // queueing at the server counts
        self.slot_inflight[r.slot] += 1;
        self.apps[idx] = Some(AppInstance {
            host,
            class: r.class,
            node: r.node,
            tenant: r.tenant,
            weight: r.weight,
            slot: r.slot,
            gid: None,
            ctx: None,
            stream: StreamId::DEFAULT,
            last_deliver: 0,
            incarnation: 0,
            attempt: 0,
            inflight: None,
            disrupted: false,
            degraded: false,
            attr_cursor: r.arrival,
        });
        if self.tracer.is_on() {
            let slot = self.requests[idx].slot;
            self.tracer.instant(
                self.trk_slots[slot],
                now,
                "dispatch",
                vec![("request", idx.to_string())],
            );
        }
        {
            let (tenant, node) = {
                let r = &self.requests[idx];
                (r.tenant, r.node)
            };
            self.flight(
                node,
                FlightKind::Dispatch,
                idx as u64,
                tenant.0 as u64,
                node.0 as u64,
            );
        }
        // Admission + server-queue wait: arrival up to dispatch.
        self.charge_stage(app, Stage::AdmissionWait, now);
        // The measured wait feeds the SLO admission gate's per-tenant EWMA
        // (a no-op unless `AdmissionConfig.slo` is set).
        let (tenant, arrival) = {
            let r = &self.requests[idx];
            (r.tenant, r.arrival)
        };
        if let Some(adm) = self.admission.as_mut() {
            adm.observe_wait(tenant.0 as usize, now.saturating_sub(arrival));
        }
        self.run_host(app, now);
    }

    /// Drive a host while it stays ready.
    fn run_host(&mut self, app: AppId, now: SimTime) {
        loop {
            let a = self.app(app);
            if !a.host.is_ready() {
                break;
            }
            let op = *a.host.current_op().expect("ready implies op");
            match op {
                HostOp::CpuBusy(d) => {
                    let until = now + d.as_ns().max(1);
                    self.app_mut(app).host.start_cpu(until);
                    self.schedule_wake(app, until);
                    self.charge_stage(app, Stage::HostCpu, until);
                    break;
                }
                HostOp::Cuda(call) => {
                    if !self.issue_call(app, call, now) {
                        break;
                    }
                }
            }
        }
    }

    /// Issue one CUDA call; returns true if the host advanced and may
    /// continue, false if it is now busy/blocked.
    fn issue_call(&mut self, app: AppId, call: CudaCall, now: SimTime) -> bool {
        match self.cfg.mode {
            SchedulerMode::CudaRuntime => self.direct_call(app, call, now),
            SchedulerMode::Rain | SchedulerMode::Strings => self.interposed_call(app, call, now),
        }
    }

    /// Advance past the current op after `cost_ns` of host work.
    fn busy_then_advance(&mut self, app: AppId, cost_ns: u64, now: SimTime) -> bool {
        if cost_ns == 0 {
            self.app_mut(app).host.advance(now);
            self.after_host_step(app, now);
            return true;
        }
        let until = now + cost_ns;
        // The wake event advances past the op.
        self.app_mut(app).host.start_cpu(until);
        self.schedule_wake(app, until);
        self.charge_stage(app, Stage::HostCpu, until);
        false
    }

    /// Bookkeeping when a host finishes its program.
    fn after_host_step(&mut self, app: AppId, now: SimTime) {
        let a = self.app(app);
        if a.host.is_done() {
            let slot = a.slot;
            let tenant = a.tenant;
            let node = a.node;
            let (disrupted, degraded) = (a.disrupted, a.degraded);
            let arrived_at = a.host.arrived_at;
            let turnaround = a.host.turnaround_ns().expect("done");
            self.stats.completions.record(slot, turnaround);
            self.stats.makespan_ns = self.stats.makespan_ns.max(now);
            self.finished += 1;
            if self.request_log {
                self.stats.slo_records.push(SloRecord {
                    tenant: tenant.0,
                    arrival: arrived_at,
                    latency: sim_core::SimDuration::from_ns(turnaround),
                });
            }
            if let Some(adm) = self.admission.as_mut() {
                adm.release(tenant.0 as usize);
            }
            let o = self.outcome(tenant);
            if disrupted {
                o.retried += 1;
            } else if degraded {
                o.degraded += 1;
            } else {
                o.completed += 1;
            }
            if let Some(m) = self.metrics.as_mut() {
                let t = tenant.0.to_string();
                m.observe("request_latency_ns", &[("tenant", t.as_str())], turnaround);
            }
            // The burn-rate rule's latency target doubles as the breach
            // threshold for the flight recorder's SLO dump class.
            let breached = self
                .alerts
                .as_ref()
                .is_some_and(|e| turnaround > e.target_ns());
            self.flight(
                node,
                FlightKind::Complete,
                app.index() as u64,
                turnaround,
                u64::from(breached),
            );
            if breached {
                self.flight.trigger(DumpReason::SloBreach, now);
            }
            self.observe_outcome(now, breached);
            // Residual tail (final host step, reply unpacking): Other.
            self.charge_stage(app, Stage::Other, now);
            if self.tracer.is_on() {
                self.tracer.span_end(
                    self.trk_slots[slot],
                    now,
                    "request",
                    Some(app.index() as u64),
                );
            }
            // A server thread freed up: admit the next queued request.
            self.slot_inflight[slot] -= 1;
            if let Some(next) = self.slot_backlog[slot].pop_front() {
                self.start_request(next, now);
            }
        }
    }

    // ---- bare CUDA runtime path -----------------------------------------

    fn direct_call(&mut self, app: AppId, call: CudaCall, now: SimTime) -> bool {
        match call {
            CudaCall::SetDevice { device } => {
                let a = self.app(app);
                let local = self.gpool.global().local_gids(a.node);
                assert!(!local.is_empty(), "node without GPUs");
                let gid = local[(device as usize) % local.len()];
                self.bind_direct(app, gid);
                self.busy_then_advance(app, self.costs.ctx_create_ns, now)
            }
            CudaCall::Malloc { bytes } => {
                let (gid, ctx) = self.binding(app);
                if self.devices[gid.index()].alloc(ctx, bytes).is_err() {
                    self.stats.oom_events += 1;
                }
                self.busy_then_advance(app, self.costs.malloc_ns, now)
            }
            CudaCall::Free { bytes } => {
                let (gid, ctx) = self.binding(app);
                self.devices[gid.index()].free(ctx, bytes);
                self.app_mut(app).host.advance(now);
                self.after_host_step(app, now);
                true
            }
            CudaCall::Memcpy { dir, bytes } => {
                let jid = self.submit_job(
                    app,
                    JobKind::Copy {
                        dir,
                        bytes,
                        pinned: false,
                    },
                    now,
                );
                self.block_or_advance(app, BlockOn::Job(jid), 0, now)
            }
            CudaCall::MemcpyAsync { dir, bytes } => {
                self.submit_job(
                    app,
                    JobKind::Copy {
                        dir,
                        bytes,
                        pinned: false,
                    },
                    now,
                );
                self.app_mut(app).host.advance(now);
                true
            }
            CudaCall::LaunchKernel { kernel } => {
                self.submit_job(app, JobKind::Kernel(kernel), now);
                self.busy_then_advance(app, self.costs.kernel_issue_ns, now)
            }
            CudaCall::StreamSynchronize => {
                let (_, ctx) = self.binding(app);
                let stream = self.app(app).stream;
                self.block_or_advance(app, BlockOn::StreamIdle(ctx, stream), 0, now)
            }
            CudaCall::DeviceSynchronize => {
                let (_, ctx) = self.binding(app);
                self.block_or_advance(app, BlockOn::CtxIdle(ctx), 0, now)
            }
            CudaCall::ThreadExit => {
                let (gid, ctx) = self.binding(app);
                self.registry.destroy(ctx);
                self.devices[gid.index()].destroy_context(ctx);
                // destroy_context advanced the device generation; pending
                // wakeups are stale (historical semantics: discarded unrun).
                self.queue.invalidate(self.dev_keys[gid.index()]);
                self.pending.forget_ctx(ctx);
                self.app_mut(app).host.advance(now);
                self.after_host_step(app, now);
                true
            }
        }
    }

    fn bind_direct(&mut self, app: AppId, gid: Gid) {
        let a = self.app(app);
        let pid = ProcessId(APP_PID_BASE + app.0);
        let node = a.node;
        let (ctx, fresh) = self.registry.get_or_create(pid, gid.index());
        if fresh {
            self.devices[gid.index()].create_context(ctx);
            // create_context advanced the device generation; mirror the
            // historical semantics (pending wakeups became stale).
            self.queue.invalidate(self.dev_keys[gid.index()]);
        }
        let a = self.app_mut(app);
        a.gid = Some(gid);
        a.ctx = Some(ctx);
        a.stream = StreamId::DEFAULT;
        let _ = node;
    }

    // ---- interposed (Rain / Strings) path --------------------------------

    fn interposed_call(&mut self, app: AppId, call: CudaCall, now: SimTime) -> bool {
        if let CudaCall::SetDevice { .. } = call {
            return self.interposed_bind(app, now);
        }
        let (gid, _) = self.binding(app);
        let packed = self.packers[gid.index()].transform(app, call);
        let blocks = packed.host_blocks || packed.call.has_output();
        if blocks {
            // The blocking call is kept in-flight for retransmission: if
            // the send is lost to a partition, the per-call deadline and
            // bounded backoff (RetryPolicy) drive resends.
            let a = self.app_mut(app);
            a.host.block(BlockOn::Reply(0));
            a.inflight = Some(packed);
            a.attempt = 1;
        }
        self.send_rpc(app, packed, blocks, now);
        if blocks {
            false
        } else {
            self.app_mut(app).host.advance(now);
            self.after_host_step(app, now);
            true
        }
    }

    /// Ship one marshalled call to the backend, applying the link's fault
    /// state: degraded windows stretch the transfer, partitions either
    /// drop the send (blocking calls with retry enabled — the frontend
    /// learns via its deadline) or buffer it until the window heals.
    fn send_rpc(&mut self, app: AppId, packed: PackedCall, blocks: bool, now: SimTime) {
        let (gid, _) = self.binding(app);
        let (node, inc, slot) = {
            let a = self.app(app);
            (a.node, a.incarnation, a.slot)
        };
        let dev_node = self.dev_node(gid);
        let policy = self.cfg.retry;
        if blocks && policy.is_enabled() && self.link_partition_heal(node, dev_node, now) > now {
            // The packet is dropped on the floor; only the deadline tells.
            self.rpc.sent += 1;
            self.rpc.dropped += 1;
            self.flight(
                node,
                FlightKind::RpcDrop,
                app.index() as u64,
                gid.index() as u64,
                dev_node.0 as u64,
            );
            let attempt = self.app(app).attempt;
            if self.tracer.is_on() {
                self.tracer.instant(
                    self.trk_slots[slot],
                    now,
                    "rpc_dropped",
                    vec![("attempt", attempt.to_string())],
                );
            }
            self.queue
                .schedule(now + policy.deadline_ns, Event::Deadline(app, inc, attempt));
            return;
        }
        let chan = self.channel(node, gid);
        let control = 48; // marshalled header + params
        let payload = self.bulk_bytes(node, gid, packed.call.rpc_payload_bytes());
        let factor = self.link_factor(node, dev_node, now);
        let base = chan.transfer_ns(control + payload);
        let transfer = if factor > 1.0 {
            (base as f64 * factor).round() as u64
        } else {
            base
        };
        let deliver_ns = self.cfg.rpc.send_overhead_ns(&packed.call)
            + transfer
            + self.cfg.rpc.recv_overhead_ns(&packed.call);
        // In-order per-application delivery: a small control message must
        // not overtake an earlier bulk payload on the same channel.
        let mut at = (now + deliver_ns).max(self.app(app).last_deliver + 1);
        // Non-blocking sends (or blocking with retry disabled) queue up
        // behind a partition and drain when the window heals.
        let heal = self.link_partition_heal(node, dev_node, now);
        if heal > now {
            at = at.max(heal + deliver_ns);
        }
        if factor > 1.0 || heal > now {
            self.app_mut(app).degraded = true;
        }
        self.app_mut(app).last_deliver = at;
        self.queue.schedule(at, Event::Deliver(app, packed, inc));
        self.rpc.sent += 1;
        self.rpc.bytes += control + payload;
        self.flight(
            node,
            FlightKind::RpcSend,
            app.index() as u64,
            gid.index() as u64,
            control + payload,
        );
        if blocks {
            // The host is parked on the reply: its clock is RPC time
            // until the call lands at the backend.
            self.charge_stage(app, Stage::Rpc, at);
        }
    }

    /// A blocking RPC's deadline expired with no reply: retry with
    /// exponential backoff while the policy allows, then declare the
    /// backend dead (`remoting::Error::RetriesExhausted`) and fail over.
    fn on_rpc_timeout(&mut self, app: AppId, now: SimTime) {
        self.stats.rpc_timeouts += 1;
        self.rpc.timeouts += 1;
        let (slot, inc, attempt, node) = {
            let a = self.app(app);
            (a.slot, a.incarnation, a.attempt, a.node)
        };
        self.flight(
            node,
            FlightKind::RpcTimeout,
            app.index() as u64,
            attempt as u64,
            0,
        );
        if self.tracer.is_on() {
            self.tracer.instant(
                self.trk_slots[slot],
                now,
                "rpc_timeout",
                vec![("attempt", attempt.to_string())],
            );
        }
        let policy = self.cfg.retry;
        let next = attempt + 1;
        if policy.allows(next) {
            let backoff = policy.backoff_ns(next, &mut self.rng);
            self.stats.rpc_retries += 1;
            self.rpc.retries += 1;
            self.flight(
                node,
                FlightKind::RpcRetry,
                app.index() as u64,
                next as u64,
                backoff,
            );
            {
                let a = self.app_mut(app);
                a.attempt = next;
                a.disrupted = true;
            }
            if self.tracer.is_on() {
                self.tracer.instant(
                    self.trk_slots[slot],
                    now,
                    "rpc_retry",
                    vec![
                        ("attempt", next.to_string()),
                        ("backoff_ns", backoff.to_string()),
                    ],
                );
            }
            self.queue
                .schedule(now + backoff, Event::Retry(app, inc, next));
        } else {
            if self.tracer.is_on() {
                self.tracer.instant(
                    self.trk_slots[slot],
                    now,
                    "rpc_retries_exhausted",
                    vec![("attempts", attempt.to_string())],
                );
            }
            self.failover_app(app, now, "retries_exhausted");
        }
    }

    /// The interposed `cudaSetDevice` life cycle: balancer query, backend
    /// binding, RM registration handshake.
    fn interposed_bind(&mut self, app: AppId, now: SimTime) -> bool {
        let (class, node, tenant, weight) = {
            let a = self.app(app);
            (a.class, a.node, a.tenant, a.weight)
        };
        let gid = self.select_gid(app, class, node, now);
        // Bind the app's backend worker.
        let pid = self.cfg.design.backend_process(app, gid.index());
        let (ctx, fresh) = self.registry.get_or_create(pid, gid.index());
        if fresh {
            self.devices[gid.index()].create_context(ctx);
            // create_context advanced the device generation; mirror the
            // historical semantics (pending wakeups became stale).
            self.queue.invalidate(self.dev_keys[gid.index()]);
        }
        let stream = if self.packers[gid.index()].uses_private_streams() {
            let s = StreamId(self.next_stream);
            self.next_stream += 1;
            s
        } else {
            StreamId::DEFAULT
        };
        {
            let a = self.app_mut(app);
            a.gid = Some(gid);
            a.ctx = Some(ctx);
            a.stream = stream;
        }
        *self
            .stats
            .placements
            .entry((self.app(app).slot, gid.index()))
            .or_insert(0) += 1;
        self.flight(
            node,
            FlightKind::Bind,
            app.index() as u64,
            gid.index() as u64,
            node.0 as u64,
        );
        // Request Manager registration (RT-signal three-way handshake).
        self.schedulers[gid.index()]
            .register(app, stream, tenant, weight, now)
            .expect("RT signal space exhausted");
        self.device_apps[gid.index()].push(app);
        self.epoch_idle_ok[gid.index()] = false;
        if self.cfg.gpu_policy != GpuPolicy::None && !self.epoch_armed[gid.index()] {
            self.epoch_armed[gid.index()] = true;
            self.queue.schedule(
                now + self.cfg.epoch.as_ns(),
                Event::Epoch(gid.index() as u32),
            );
        }
        let setup = if fresh {
            self.costs.ctx_create_ns
        } else {
            self.costs.stream_create_ns
        };
        let cost = self.costs.balancer_rtt_ns + self.costs.handshake_ns + setup;
        self.busy_then_advance(app, cost, now)
    }

    fn select_gid(&mut self, app: AppId, class: WorkloadClass, node: NodeId, now: SimTime) -> Gid {
        let request = app.index() as u64;
        // Per-node shards carry cluster-wide GIDs, so both scopes speak
        // the same id space and nothing is renumbered.
        let m = match self.scope {
            LbScope::Global => &mut self.mappers[0],
            LbScope::Local => &mut self.mappers[node.0 as usize],
        };
        let gid = m.select_device(class, node);
        m.bind(gid, class);
        m.note_placement(now, request, class, node, gid);
        gid
    }

    fn unbind_gid(&mut self, gid: Gid, node: NodeId, class: WorkloadClass) {
        match self.scope {
            LbScope::Global => self.mappers[0].unbind(gid, class),
            LbScope::Local => self.mappers[node.0 as usize].unbind(gid, class),
        }
    }

    fn feedback_to_mapper(
        &mut self,
        node: NodeId,
        gid: Gid,
        class: WorkloadClass,
        rec: strings_core::mapper::FeedbackRecord,
    ) {
        match self.scope {
            LbScope::Global => self.mappers[0].feedback(class, gid, rec),
            LbScope::Local => self.mappers[node.0 as usize].feedback(class, gid, rec),
        }
    }

    /// A call arrives at the backend daemon.
    fn on_deliver(&mut self, app: AppId, packed: PackedCall, now: SimTime) {
        self.rpc.delivered += 1;
        let (gid, _) = self.binding(app);
        if self.flight.is_on() {
            let node = self.app(app).node;
            self.flight(
                node,
                FlightKind::RpcDeliver,
                app.index() as u64,
                gid.index() as u64,
                self.rpc.delivered,
            );
        }
        if self.cfg.design == BackendDesign::SingleMaster {
            self.master_q[gid.index()].push_back((app, packed));
            self.pump_master(gid.index(), now);
        } else {
            self.exec_backend(app, packed, now);
        }
    }

    /// Design II: the single master thread dispatches serially and stalls
    /// on blocking synchronization.
    fn pump_master(&mut self, gid: usize, now: SimTime) {
        while self.master_stall[gid].is_none() {
            let Some((app, packed)) = self.master_q[gid].pop_front() else {
                break;
            };
            let stall = self.exec_backend(app, packed, now);
            if let Some(cond) = stall {
                self.master_stall[gid] = Some(cond);
            }
        }
    }

    /// Execute a delivered call at the backend. Returns a stall condition
    /// if this call blocks the (Design II) master thread.
    fn exec_backend(&mut self, app: AppId, packed: PackedCall, now: SimTime) -> Option<BlockOn> {
        let (gid, ctx) = self.binding(app);
        let blocks = packed.host_blocks || packed.call.has_output();
        let a = self.app(app);
        let node = a.node;
        let chan = self.channel(node, gid);
        let dev_node = self.dev_node(gid);
        let ret = self.bulk_bytes(node, gid, packed.call.rpc_return_bytes());
        let factor = self.link_factor(node, dev_node, now);
        let ret_base = chan.transfer_ns(ret);
        let ret_ns = if factor > 1.0 {
            self.app_mut(app).degraded = true;
            (ret_base as f64 * factor).round() as u64
        } else {
            ret_base
        };
        let reply_ns = ret_ns + self.cfg.rpc.reply_overhead_ns(&packed.call);
        match packed.call {
            CudaCall::Memcpy { dir, bytes } | CudaCall::MemcpyAsync { dir, bytes } => {
                let jid = self.submit_job(
                    app,
                    JobKind::Copy {
                        dir,
                        bytes,
                        pinned: packed.pinned,
                    },
                    now,
                );
                if blocks {
                    self.wait_or_reply(app, BlockOn::Job(jid), reply_ns, now);
                }
                None
            }
            CudaCall::LaunchKernel { kernel } => {
                self.submit_job(app, JobKind::Kernel(kernel), now);
                None
            }
            CudaCall::StreamSynchronize => {
                let stream = self.app(app).stream;
                let cond = BlockOn::StreamIdle(ctx, stream);
                self.wait_or_reply(app, cond, reply_ns, now);
                (!self.pending.is_satisfied(cond)).then_some(cond)
            }
            CudaCall::DeviceSynchronize => {
                let cond = BlockOn::CtxIdle(ctx);
                self.wait_or_reply(app, cond, reply_ns, now);
                (!self.pending.is_satisfied(cond)).then_some(cond)
            }
            CudaCall::Malloc { bytes } => {
                if self.devices[gid.index()].alloc(ctx, bytes).is_err() {
                    self.stats.oom_events += 1;
                }
                let at = now + reply_ns + self.costs.malloc_ns;
                self.schedule_reply(app, at);
                self.charge_stage(app, Stage::Rpc, at);
                None
            }
            CudaCall::Free { bytes } => {
                self.devices[gid.index()].free(ctx, bytes);
                if blocks {
                    self.schedule_reply(app, now + reply_ns);
                    self.charge_stage(app, Stage::Rpc, now + reply_ns);
                }
                None
            }
            CudaCall::ThreadExit => {
                self.backend_thread_exit(app, gid, ctx, now);
                self.schedule_reply(app, now + reply_ns);
                self.charge_stage(app, Stage::Rpc, now + reply_ns);
                None
            }
            CudaCall::SetDevice { .. } => {
                unreachable!("SetDevice is handled synchronously at the frontend")
            }
        }
    }

    fn backend_thread_exit(&mut self, app: AppId, gid: Gid, ctx: ContextId, now: SimTime) {
        let (node, class) = {
            let a = self.app(app);
            (a.node, a.class)
        };
        // Feedback Engine: piggyback the record, then unregister.
        if let Some(rec) = self.schedulers[gid.index()].unregister(app, now) {
            if !self.mappers.is_empty() {
                self.feedback_to_mapper(node, gid, class, rec);
            }
        }
        self.device_apps[gid.index()].retain(|a| *a != app);
        self.epoch_idle_ok[gid.index()] = false;
        self.unbind_gid(gid, node, class);
        if !self.cfg.design.shares_context() {
            // Design I: the app's private backend process and context die.
            self.registry.destroy(ctx);
            self.devices[gid.index()].destroy_context(ctx);
            self.pending.forget_ctx(ctx);
            self.sync_device(gid.index(), now);
        }
    }

    // ---- device interaction ----------------------------------------------

    fn binding(&self, app: AppId) -> (Gid, ContextId) {
        let a = self.app(app);
        (
            a.gid.expect("app not bound to a device"),
            a.ctx.expect("app without context"),
        )
    }

    fn submit_job(&mut self, app: AppId, kind: JobKind, now: SimTime) -> gpu_sim::ids::JobId {
        let (gid, ctx) = self.binding(app);
        let stream = self.app(app).stream;
        let jid = self.devices[gid.index()]
            .submit(ctx, stream, kind, app.0 as u64, now)
            .expect("submit to bound context");
        self.pending.submit(ctx, stream, jid);
        self.sync_device(gid.index(), now);
        jid
    }

    /// Direct mode: block the host on `cond`, or advance if it already
    /// holds.
    fn block_or_advance(&mut self, app: AppId, cond: BlockOn, reply_ns: u64, now: SimTime) -> bool {
        if self.pending.is_satisfied(cond) {
            self.charge_wait_release(app, cond, now);
            self.app_mut(app).host.advance(now);
            self.after_host_step(app, now);
            return true;
        }
        self.app_mut(app).host.block(cond);
        self.waiters.push(Waiter {
            app,
            cond,
            reply_ns,
            direct: true,
        });
        false
    }

    /// Backend: reply when `cond` holds (immediately if it already does).
    fn wait_or_reply(&mut self, app: AppId, cond: BlockOn, reply_ns: u64, now: SimTime) {
        if self.pending.is_satisfied(cond) {
            self.charge_wait_release(app, cond, now);
            self.charge_stage(app, Stage::Rpc, now + reply_ns);
            self.schedule_reply(app, now + reply_ns);
        } else {
            self.waiters.push(Waiter {
                app,
                cond,
                reply_ns,
                direct: false,
            });
        }
    }

    /// Step a device, harvest completions, feed monitors/waiters, and
    /// reschedule its next event.
    fn sync_device(&mut self, gid: usize, now: SimTime) {
        self.devices[gid].step(now);
        // step() advanced the device's generation: every wakeup scheduled
        // before this point is now stale. Cancel them in the queue (they
        // die at their original pop slot) instead of dispatching them.
        self.queue.invalidate(self.dev_keys[gid]);
        // Reuse one completion buffer across syncs; a nested sync (a woken
        // host resubmitting) takes an empty stand-in and is still correct.
        let mut done = std::mem::take(&mut self.done_buf);
        self.devices[gid].take_completions_into(&mut done);
        let any = !done.is_empty();
        for c in &done {
            self.pending.complete(c.job.id);
            if self.tracer.is_on() {
                // Record the finished work for wait decomposition: the
                // window keyed by whatever condition a host might block on.
                self.attr_job.insert(c.job.id, EngineWindow::from_job(c));
                self.attr_stream
                    .entry((c.job.ctx, c.job.stream))
                    .and_modify(|w| w.merge(c))
                    .or_insert_with(|| EngineWindow::from_job(c));
                self.attr_ctx
                    .entry(c.job.ctx)
                    .and_modify(|w| w.merge(c))
                    .or_insert_with(|| EngineWindow::from_job(c));
            }
            let app = AppId(c.job.tag as u32);
            let service = c.service_ns();
            // Fairness horizon accounting uses true engine service.
            if self.fairness_horizon.is_none_or(|h| c.finished_at <= h) {
                if let Some(Some(a)) = self.apps.get(app.index()) {
                    *self.stats.tenant_service_ns.entry(a.tenant).or_insert(0) += service;
                }
            }
            // Rain cannot separate context-switch overhead from measured
            // service (paper §V.D.1): its monitors over-report.
            let measured = if self.cfg.service_includes_switch_overhead {
                service + self.devices[gid].config().context_switch_ns / 4
            } else {
                service
            };
            let (is_transfer, bytes) = match c.job.kind {
                JobKind::Copy { bytes, .. } => (true, bytes),
                JobKind::Kernel(_) => (false, 0),
            };
            self.schedulers[gid].record_service(app, measured, is_transfer, bytes);
        }
        // Return the buffer before any re-entrant path can need it.
        done.clear();
        self.done_buf = done;
        if any {
            self.check_waiters(now);
            self.maybe_retick(gid, now);
        }
        if let Some(t) = self.devices[gid].next_event_time(now) {
            self.queue
                .schedule_keyed(self.dev_keys[gid], t.max(now), Event::Device(gid as u32));
        }
        // Design II masters may unstall when pending work drains.
        if self.cfg.design == BackendDesign::SingleMaster {
            if let Some(cond) = self.master_stall[gid] {
                if self.pending.is_satisfied(cond) {
                    self.master_stall[gid] = None;
                    self.pump_master(gid, now);
                }
            }
        }
    }

    /// One injected fault from the plan fires.
    fn on_plan_fault(&mut self, idx: usize, now: SimTime) {
        let ev = self.plan.events()[idx];
        if self.tracer.is_on() {
            self.tracer.instant(
                self.trk_faults,
                now,
                "fault_injected",
                vec![
                    ("kind", ev.kind.label().to_string()),
                    ("detail", ev.kind.to_string()),
                ],
            );
        }
        if self.flight.is_on() {
            // Route the record to the struck node's ring; device faults
            // land on the device's hosting node.
            let ring = match ev.kind {
                FaultKind::NodeLoss { node }
                | FaultKind::LinkDegraded { node, .. }
                | FaultKind::Partition { node, .. } => node,
                FaultKind::BackendCrash { gid } | FaultKind::DeviceFailure { gid } => {
                    self.gpool.global().entry(Gid(gid)).map_or(0, |e| e.node.0)
                }
            };
            self.flight(
                NodeId(ring),
                FlightKind::FaultInjected,
                NO_ID,
                ev.kind.code(),
                ev.kind.target(),
            );
        }
        match ev.kind {
            FaultKind::BackendCrash { gid } => self.on_backend_crash(gid as usize, now),
            FaultKind::DeviceFailure { gid } => self.on_device_failure(Gid(gid), now),
            FaultKind::NodeLoss { node } => self.on_node_loss(NodeId(node), now),
            FaultKind::LinkDegraded {
                node,
                factor,
                for_ns,
            } => {
                let n = node as usize;
                if n < self.degrade.len() {
                    self.degrade[n] = (now + for_ns, factor.max(1.0));
                    if self.tracer.is_on() {
                        let id = Some(0x1000 + n as u64);
                        self.tracer.span_begin(
                            self.trk_faults,
                            now,
                            "link_degraded",
                            id,
                            vec![("node", node.to_string()), ("factor", factor.to_string())],
                        );
                        self.tracer
                            .span_end(self.trk_faults, now + for_ns, "link_degraded", id);
                    }
                }
            }
            FaultKind::Partition { node, for_ns } => {
                let n = node as usize;
                if n < self.partition_until.len() {
                    self.partition_until[n] = self.partition_until[n].max(now + for_ns);
                    if self.tracer.is_on() {
                        let id = Some(0x2000 + n as u64);
                        self.tracer.span_begin(
                            self.trk_faults,
                            now,
                            "partition",
                            id,
                            vec![("node", node.to_string())],
                        );
                        self.tracer
                            .span_end(self.trk_faults, now + for_ns, "partition", id);
                    }
                }
            }
        }
        // Trigger after the handler so the fault-class dump window
        // includes the blast radius (aborts, failovers) just recorded.
        self.flight.trigger(DumpReason::Fault, now);
    }

    /// A backend process on `gid` crashes and respawns. The blast radius
    /// depends on the worker design (paper Figure 5): Design I isolates
    /// the fault to one application's private backend process; Design II's
    /// single master takes every application on the device down with it;
    /// Design III loses the per-GPU process — the offending application is
    /// lost, but its siblings' frontends reconnect to the respawned
    /// process and replay (disrupted, not lost).
    fn on_backend_crash(&mut self, gid: usize, now: SimTime) {
        if gid >= self.devices.len() {
            return;
        }
        let mut bound = self.device_apps[gid].clone();
        bound.sort();
        if bound.is_empty() {
            return;
        }
        match self.cfg.design {
            BackendDesign::SingleMaster => {
                for app in bound {
                    self.abort_app(app, now);
                }
                self.master_q[gid].clear();
                self.master_stall[gid] = None;
            }
            BackendDesign::PerAppProcess => {
                self.abort_app(bound[0], now);
            }
            BackendDesign::PerGpuThreads => {
                self.abort_app(bound[0], now);
                for app in bound.into_iter().skip(1) {
                    self.failover_app(app, now, "backend_respawn");
                }
            }
        }
        self.sync_device(gid, now);
        self.check_waiters(now);
    }

    /// Permanent fail-stop of one device (ECC-style): it leaves the pool,
    /// the gMap marks it lost (surviving GIDs stay stable — the rebuild
    /// guarantee), the balancer retires its DST row, and every bound
    /// application fails over to a survivor.
    fn on_device_failure(&mut self, gid: Gid, now: SimTime) {
        if self.gpool.global().entry(gid).is_none() || self.gpool.global().is_lost(gid) {
            return;
        }
        self.gpool.fail_device(gid).expect("known gid");
        self.retire_gid(gid, now);
        self.note_gmap_rebuild(now);
        self.fail_bound_apps(gid, now);
    }

    /// A whole node drops out of the supernode: its devices leave the
    /// pool, its frontends die (their requests are lost outright), and
    /// remote applications bound to its devices fail over.
    fn on_node_loss(&mut self, node: NodeId, now: SimTime) {
        let n = node.0 as usize;
        if n >= self.node_lost.len() || self.node_lost[n] {
            return;
        }
        self.node_lost[n] = true;
        let newly = self.gpool.fail_node(node);
        for gid in &newly {
            self.retire_gid(*gid, now);
        }
        if !newly.is_empty() {
            self.note_gmap_rebuild(now);
        }
        let local_apps: Vec<AppId> = self
            .apps
            .iter()
            .enumerate()
            .filter_map(|(i, a)| {
                a.as_ref()
                    .filter(|a| !a.host.is_done() && a.node == node)
                    .map(|_| AppId(i as u32))
            })
            .collect();
        for app in local_apps {
            self.abort_app(app, now);
        }
        for gid in newly {
            self.fail_bound_apps(gid, now);
        }
    }

    fn note_gmap_rebuild(&mut self, now: SimTime) {
        self.stats.gmap_rebuilds += 1;
        if self.tracer.is_on() {
            self.tracer.instant(
                self.trk_faults,
                now,
                "gmap_rebuild",
                vec![("survivors", self.gpool.global().live_len().to_string())],
            );
        }
    }

    /// Retire a lost device in whichever mapper owns it (both scopes use
    /// the pool-wide GID — shards are not renumbered).
    fn retire_gid(&mut self, gid: Gid, now: SimTime) {
        if self.mappers.is_empty() {
            return;
        }
        match self.scope {
            LbScope::Global => self.mappers[0].retire(now, gid),
            LbScope::Local => {
                let node = self.dev_node(gid);
                self.mappers[node.0 as usize].retire(now, gid);
            }
        }
    }

    /// Whether an application fronted on `node` can be re-placed after
    /// losing its device (needs a balancer and a surviving device).
    fn has_live_target(&self, node: NodeId) -> bool {
        if self.cfg.mode == SchedulerMode::CudaRuntime || self.mappers.is_empty() {
            return false;
        }
        match self.scope {
            LbScope::Global => self.mappers[0].has_live_device(),
            LbScope::Local => self.mappers[node.0 as usize].has_live_device(),
        }
    }

    /// Every live application bound to `gid` loses its backend: failover
    /// where re-placement is possible, abort otherwise.
    fn fail_bound_apps(&mut self, gid: Gid, now: SimTime) {
        let bound: Vec<AppId> = self
            .apps
            .iter()
            .enumerate()
            .filter_map(|(i, a)| {
                a.as_ref()
                    .filter(|a| !a.host.is_done() && a.gid == Some(gid))
                    .map(|_| AppId(i as u32))
            })
            .collect();
        for app in bound {
            let node = self.app(app).node;
            if self.has_live_target(node) {
                self.failover_app(app, now, "device_lost");
            } else {
                self.abort_app(app, now);
            }
        }
        let g = gid.index();
        self.master_q[g].clear();
        self.master_stall[g] = None;
        self.check_waiters(now);
    }

    /// Detach `app` from its device: cancel queued work, unregister it
    /// from the device scheduler and the balancer, and drop its waiters.
    fn detach_app(&mut self, app: AppId, now: SimTime) {
        let (node, class, gid, ctx, stream) = {
            let a = self.app(app);
            (a.node, a.class, a.gid, a.ctx, a.stream)
        };
        if let (Some(gid), Some(ctx)) = (gid, ctx) {
            let g = gid.index();
            for jid in self.devices[g].cancel_stream(ctx, stream) {
                self.pending.complete(jid);
            }
            self.schedulers[g].unregister(app, now);
            self.device_apps[g].retain(|a| *a != app);
            self.epoch_idle_ok[g] = false;
            self.master_q[g].retain(|(a, _)| *a != app);
            if !self.mappers.is_empty() {
                self.unbind_gid(gid, node, class);
            }
            // Cancelling streams can change what the device runs next;
            // re-sync so its event chain keeps driving the survivors.
            self.sync_device(g, now);
        }
        self.waiters.retain(|w| w.app != app);
    }

    /// Tear down a killed application: purge its queued device work,
    /// unregister it everywhere, and end its host thread without a
    /// completion record.
    fn abort_app(&mut self, app: AppId, now: SimTime) {
        let (slot, tenant, gid, node) = {
            let a = self.app(app);
            if a.host.is_done() {
                return;
            }
            (a.slot, a.tenant, a.gid, a.node)
        };
        self.detach_app(app, now);
        let a = self.app_mut(app);
        a.incarnation += 1; // poison in-flight events
        a.inflight = None;
        a.host.abort();
        self.stats.failed_requests += 1;
        self.finished += 1;
        self.outcome(tenant).lost += 1;
        self.flight(
            node,
            FlightKind::Abort,
            app.index() as u64,
            node.0 as u64,
            0,
        );
        self.observe_outcome(now, true);
        if let Some(adm) = self.admission.as_mut() {
            adm.release(tenant.0 as usize);
        }
        if self.tracer.is_on() {
            self.tracer.instant(
                self.trk_slots[slot],
                now,
                "fault_abort",
                vec![
                    ("request", app.index().to_string()),
                    (
                        "gid",
                        gid.map_or_else(|| "-".to_string(), |g| g.index().to_string()),
                    ),
                ],
            );
            self.tracer.span_end(
                self.trk_slots[slot],
                now,
                "request",
                Some(app.index() as u64),
            );
        }
        self.slot_inflight[slot] -= 1;
        if let Some(next) = self.slot_backlog[slot].pop_front() {
            self.start_request(next, now);
        }
    }

    /// Fail `app` over: tear down the dead binding, bump the incarnation
    /// so stale events are discarded, and replay the program once the
    /// frontend has detected the failure and a backend respawned. The
    /// request survives — slower, and counted as disrupted.
    fn failover_app(&mut self, app: AppId, now: SimTime, reason: &str) {
        let (slot, tenant, node, old_gid) = {
            let a = self.app(app);
            if a.host.is_done() {
                return;
            }
            (a.slot, a.tenant, a.node, a.gid)
        };
        self.detach_app(app, now);
        // Failure detection (one deadline) plus backend respawn/backoff.
        let policy = self.cfg.retry;
        let delay = if policy.is_enabled() {
            policy.deadline_ns + policy.backoff_ns(2, &mut self.rng)
        } else {
            1_000_000
        };
        let a = self.app_mut(app);
        a.incarnation += 1;
        a.attempt = 0;
        a.inflight = None;
        a.gid = None;
        a.ctx = None;
        a.stream = StreamId::DEFAULT;
        a.disrupted = true;
        let inc = a.incarnation;
        self.stats.failovers += 1;
        self.outcome(tenant).downtime_ns += delay;
        self.flight(
            node,
            FlightKind::Failover,
            app.index() as u64,
            old_gid.map_or(NO_ID, |g| g.index() as u64),
            delay,
        );
        if self.tracer.is_on() {
            let id = Some(0x4000_0000 + app.index() as u64);
            self.tracer.span_begin(
                self.trk_slots[slot],
                now,
                "failover",
                id,
                vec![("reason", reason.to_string())],
            );
            self.tracer
                .span_end(self.trk_slots[slot], now + delay, "failover", id);
        }
        self.queue.schedule(now + delay, Event::Restart(app, inc));
    }

    /// The failover window elapsed: replay the program from the top. The
    /// replayed `cudaSetDevice` re-enters the balancer, which now skips
    /// retired devices — that is the re-placement.
    fn on_restart(&mut self, app: AppId, now: SimTime) {
        let (slot, node) = {
            let a = self.app(app);
            (a.slot, a.node)
        };
        if self.node_lost[node.0 as usize] || !self.has_live_target(node) {
            // Nowhere left to run: the request is lost after all.
            self.abort_app(app, now);
            return;
        }
        if self.tracer.is_on() {
            self.tracer.instant(
                self.trk_slots[slot],
                now,
                "replay",
                vec![("request", app.index().to_string())],
            );
        }
        {
            let inc = self.app(app).incarnation;
            self.flight(
                node,
                FlightKind::Restart,
                app.index() as u64,
                node.0 as u64,
                inc as u64,
            );
        }
        let a = self.app_mut(app);
        a.last_deliver = now;
        a.host.restart(now);
        // The failover window (detection + respawn) is unattributable
        // recovery time.
        self.charge_stage(app, Stage::Other, now);
        self.run_host(app, now);
    }

    fn check_waiters(&mut self, now: SimTime) {
        // Reused buffer; a re-entrant call (a released waiter's host step
        // can sync another device) takes an empty stand-in.
        let mut ready = std::mem::take(&mut self.ready_buf);
        ready.clear();
        let mut i = 0;
        while i < self.waiters.len() {
            if self.pending.is_satisfied(self.waiters[i].cond) {
                ready.push(self.waiters.swap_remove(i));
            } else {
                i += 1;
            }
        }
        // Deterministic processing order.
        ready.sort_by_key(|w| w.app);
        for w in ready.drain(..) {
            self.charge_wait_release(w.app, w.cond, now);
            if w.direct {
                let a = self.app_mut(w.app);
                a.host.wake_and_advance(now);
                self.after_host_step(w.app, now);
                self.run_host(w.app, now);
            } else {
                self.charge_stage(w.app, Stage::Rpc, now + w.reply_ns);
                self.schedule_reply(w.app, now + w.reply_ns);
            }
        }
        ready.clear();
        self.ready_buf = ready;
    }

    // ---- dispatcher epochs ------------------------------------------------

    fn on_epoch(&mut self, gid: usize, now: SimTime) {
        if self.device_apps[gid].is_empty() {
            self.epoch_armed[gid] = false;
            return;
        }
        // Idle fast path: the previous full pass gated every stream of an
        // idle device, and nothing has registered or unregistered since. As
        // long as the device is still idle the dispatcher would re-derive
        // the identical empty awake set and identical gates, the device
        // step would be a no-op, and no wakeup would be (re)armed — only
        // the per-epoch LAS decay (Eq. 1) is observable. Roll it and go.
        if self.epoch_idle_ok[gid] && self.devices[gid].is_idle() {
            self.schedulers[gid].roll_idle_epoch();
        } else {
            self.apply_gating(gid, now);
        }
        self.queue
            .schedule(now + self.cfg.epoch.as_ns(), Event::Epoch(gid as u32));
    }

    /// If everything dispatchable is gated but work exists, re-run the
    /// dispatcher immediately (work conservation between epochs).
    fn maybe_retick(&mut self, gid: usize, now: SimTime) {
        if self.cfg.gpu_policy == GpuPolicy::None || self.device_apps[gid].is_empty() {
            return;
        }
        if self.devices[gid].next_event_time(now).is_none() && self.devices[gid].total_pending() > 0
        {
            self.apply_gating(gid, now);
        }
    }

    fn apply_gating(&mut self, gid: usize, now: SimTime) {
        // Reused buffers keep this path allocation-free; a re-entrant call
        // (sync_device → maybe_retick) takes empty stand-ins and is still
        // correct, just unamortized.
        let mut work = std::mem::take(&mut self.work_buf);
        let mut gates = std::mem::take(&mut self.gate_buf);
        let mut awake = std::mem::take(&mut self.awake_buf);
        work.clear();
        gates.clear();
        for &app in &self.device_apps[gid] {
            let a = self.apps[app.index()].as_ref().expect("registered app");
            let ctx = a.ctx.expect("registered app has ctx");
            let head = self.devices[gid].stream_head_kind(ctx, a.stream);
            let phase = match head {
                Some(JobKind::Kernel(_)) => Phase::KernelLaunch,
                Some(JobKind::Copy {
                    dir: CopyDirection::HostToDevice,
                    ..
                }) => Phase::H2D,
                Some(JobKind::Copy {
                    dir: CopyDirection::DeviceToHost,
                    ..
                }) => Phase::D2H,
                None => Phase::Default,
            };
            work.push(AppWork {
                app,
                has_ready: head.is_some(),
                phase,
            });
            gates.push((ctx, a.stream, app));
        }
        self.schedulers[gid].epoch_tick_into(&work, now, &mut awake);
        for &(ctx, stream, app) in &gates {
            self.devices[gid].set_stream_gate(ctx, stream, !awake.contains(&app));
        }
        self.work_buf = work;
        self.gate_buf = gates;
        self.awake_buf = awake;
        self.sync_device(gid, now);
        // A pass that ends with the device idle implies nothing was
        // dispatchable (anything started would still be in flight), so the
        // next epoch may take the idle fast path — unless the scheduler is
        // tracing epoch decisions, which the fast path would not emit.
        self.epoch_idle_ok[gid] =
            self.devices[gid].is_idle() && !self.schedulers[gid].tracing_epochs();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::rng::SimRng;
    use strings_core::mapper::LbPolicy;
    use strings_workloads::profile::AppKind;
    use strings_workloads::tracegen::TraceGenerator;

    fn requests(kinds: &[(AppKind, usize, u64)]) -> Vec<PlannedRequest> {
        // (kind, slot, arrival_ms)
        let mut rng = SimRng::new(7);
        let gen = TraceGenerator {
            jitter: 0.0,
            ..Default::default()
        };
        kinds
            .iter()
            .map(|(k, slot, ms)| PlannedRequest {
                arrival: ms * 1_000_000,
                slot: *slot,
                class: WorkloadClass(*k as u32),
                node: NodeId(0),
                tenant: TenantId(*slot as u32),
                weight: 1.0,
                server_threads: 16,
                program: gen.generate(&k.profile(), &mut rng),
            })
            .collect()
    }

    fn run(cfg: StackConfig, reqs: Vec<PlannedRequest>) -> RunStats {
        World::new(
            &TopologySpec::node_a(),
            DeviceConfig::default(),
            cfg,
            LbScope::Global,
            HostCosts::default(),
            reqs,
            None,
        )
        .run()
    }

    #[test]
    fn single_request_completes_under_bare_runtime() {
        let stats = run(
            StackConfig::cuda_runtime(),
            requests(&[(AppKind::GA, 0, 0)]),
        );
        assert_eq!(stats.completed_requests, 1);
        let ct = stats.completions.mean_ct(0);
        let solo = AppKind::GA.profile().runtime.as_ns() as f64;
        // Within 2× of the profile runtime (overheads, device speed).
        assert!(
            ct > 0.5 * solo && ct < 2.0 * solo,
            "GA completion {ct} vs solo {solo}"
        );
        assert_eq!(stats.oom_events, 0);
    }

    #[test]
    fn single_request_completes_under_strings() {
        let stats = run(
            StackConfig::strings(LbPolicy::GMin),
            requests(&[(AppKind::GA, 0, 0)]),
        );
        assert_eq!(stats.completed_requests, 1);
        assert!(stats.completions.mean_ct(0) > 0.0);
    }

    #[test]
    fn single_request_completes_under_rain() {
        let stats = run(
            StackConfig::rain(LbPolicy::Grr),
            requests(&[(AppKind::MC, 0, 0)]),
        );
        assert_eq!(stats.completed_requests, 1);
    }

    #[test]
    fn colliding_requests_serialize_on_bare_runtime() {
        // Two simultaneous MC requests both pick device 0: serialized with
        // context switching, so slower than 1.5× a solo run.
        let solo = run(
            StackConfig::cuda_runtime(),
            requests(&[(AppKind::MC, 0, 0)]),
        );
        let both = run(
            StackConfig::cuda_runtime(),
            requests(&[(AppKind::MC, 0, 0), (AppKind::MC, 1, 0)]),
        );
        assert_eq!(both.completed_requests, 2);
        let solo_ct = solo.completions.mean_ct(0);
        let shared_ct = both.completions.mean_ct(0).max(both.completions.mean_ct(1));
        assert!(
            shared_ct > 1.2 * solo_ct,
            "collision must hurt: {shared_ct} vs {solo_ct}"
        );
        assert!(both.context_switches > 0, "driver must have multiplexed");
    }

    #[test]
    fn balancer_spreads_colliding_requests() {
        // Same two requests under Strings GMin: different GPUs, no
        // meaningful slowdown versus solo.
        let both = run(
            StackConfig::strings(LbPolicy::GMin),
            requests(&[(AppKind::MC, 0, 0), (AppKind::MC, 1, 0)]),
        );
        assert_eq!(both.completed_requests, 2);
        assert_eq!(both.context_switches, 0, "one context per device");
    }

    #[test]
    fn strings_beats_bare_runtime_under_collision() {
        let reqs = requests(&[
            (AppKind::MC, 0, 0),
            (AppKind::MC, 1, 0),
            (AppKind::MC, 0, 100),
        ]);
        let cuda = run(StackConfig::cuda_runtime(), reqs.clone());
        let strings = run(StackConfig::strings(LbPolicy::GMin), reqs);
        assert!(
            strings.mean_completion_ns() < cuda.mean_completion_ns(),
            "strings {} !< cuda {}",
            strings.mean_completion_ns(),
            cuda.mean_completion_ns()
        );
    }

    #[test]
    fn tfs_divides_service_between_tenants() {
        use strings_core::device_sched::GpuPolicy;
        // Two long-ish apps on a single-GPU node, equal weights.
        let topo = TopologySpec::builder()
            .node(vec![gpu_sim::spec::GpuModel::TeslaC2050])
            .build();
        let reqs = requests(&[(AppKind::HI, 0, 0), (AppKind::MM, 1, 0)]);
        let stats = World::new(
            &topo,
            DeviceConfig::default(),
            StackConfig::strings(LbPolicy::GMin).with_gpu_policy(GpuPolicy::Tfs),
            LbScope::Global,
            HostCosts::default(),
            reqs,
            Some(10_000_000_000), // 10 s horizon
        )
        .run();
        assert_eq!(stats.completed_requests, 2);
        let services: Vec<u64> = stats.tenant_service_ns.values().copied().collect();
        assert_eq!(services.len(), 2);
        let fairness =
            strings_metrics::jain_fairness(&services.iter().map(|s| *s as f64).collect::<Vec<_>>());
        assert!(fairness > 0.7, "TFS fairness too low: {fairness}");
    }

    #[test]
    fn feedback_flows_to_mapper_and_arbiter_switches() {
        let cfg = StackConfig::strings(LbPolicy::GWtMin).with_feedback(LbPolicy::Mbf, 2);
        let reqs = requests(&[
            (AppKind::GA, 0, 0),
            (AppKind::GA, 0, 50),
            (AppKind::GA, 0, 3000),
        ]);
        let stats = run(cfg, reqs);
        assert_eq!(stats.completed_requests, 3);
    }

    #[test]
    fn deterministic_across_runs() {
        let mk = || {
            run(
                StackConfig::strings(LbPolicy::GMin),
                requests(&[
                    (AppKind::MC, 0, 0),
                    (AppKind::BS, 1, 20),
                    (AppKind::GA, 0, 40),
                ]),
            )
        };
        let a = mk();
        let b = mk();
        assert_eq!(a.mean_completion_ns(), b.mean_completion_ns());
        assert_eq!(a.events, b.events);
        assert_eq!(a.makespan_ns, b.makespan_ns);
    }

    #[test]
    fn design_two_master_serializes_but_completes() {
        let mut cfg = StackConfig::strings(LbPolicy::GMin);
        cfg.design = BackendDesign::SingleMaster;
        // Keep SST off for Design II: device syncs block the master.
        cfg.packer.sync_to_stream = false;
        let stats = run(cfg, requests(&[(AppKind::GA, 0, 0), (AppKind::GA, 1, 0)]));
        assert_eq!(stats.completed_requests, 2);
    }

    #[test]
    fn local_scope_keeps_apps_on_their_node() {
        let reqs: Vec<PlannedRequest> = {
            let mut r = requests(&[(AppKind::MC, 0, 0), (AppKind::MC, 1, 0)]);
            r[1].node = NodeId(1);
            r
        };
        let stats = World::new(
            &TopologySpec::supernode(),
            DeviceConfig::default(),
            StackConfig::strings(LbPolicy::GMin),
            LbScope::Local,
            HostCosts::default(),
            reqs,
            None,
        )
        .run();
        assert_eq!(stats.completed_requests, 2);
        // Devices on both nodes must have seen work (one app each).
        let t = &stats.device_telemetry;
        let node_a_work = t[0].kernels_completed + t[1].kernels_completed;
        let node_b_work = t[2].kernels_completed + t[3].kernels_completed;
        assert!(node_a_work > 0 && node_b_work > 0);
    }
}
