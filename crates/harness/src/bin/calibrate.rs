//! Calibration probe: prints the headline orderings the paper's figures
//! need, so the timing knobs in `DeviceConfig`/`HostCosts` can be tuned.
//!
//! Usage: `cargo run --release -p strings-harness --bin calibrate [n] [load]`

use remoting::gpool::NodeId;
use strings_core::config::StackConfig;
use strings_core::device_sched::GpuPolicy;
use strings_core::device_sched::TenantId;
use strings_core::mapper::LbPolicy;
use strings_harness::scenario::{LbScope, Scenario, StreamSpec};
use strings_harness::sweep;
use strings_workloads::profile::AppKind;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let n: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(20);
    let load: f64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(1.5);
    let seeds: Vec<u64> = vec![11, 22, 33];

    println!("== single-node (NodeA) per-app speedups vs CUDA runtime ==");
    println!("n={n} load={load}");
    let apps = [
        AppKind::MC,
        AppKind::BS,
        AppKind::GA,
        AppKind::DC,
        AppKind::HI,
        AppKind::SC,
    ];
    for app in apps {
        let base = Scenario::single_node(
            StackConfig::cuda_runtime(),
            vec![StreamSpec::of(app, n, load)],
            0,
        );
        let cuda = sweep::mean_over_seeds(&base, &seeds, |s| s.mean_completion_ns());
        let mut row = format!("{app}: ");
        for (label, cfg) in [
            ("GRR-Rain", StackConfig::rain(LbPolicy::Grr)),
            ("GMin-Rain", StackConfig::rain(LbPolicy::GMin)),
            ("GWtMin-Rain", StackConfig::rain(LbPolicy::GWtMin)),
            ("GRR-Str", StackConfig::strings(LbPolicy::Grr)),
            ("GMin-Str", StackConfig::strings(LbPolicy::GMin)),
            ("GWtMin-Str", StackConfig::strings(LbPolicy::GWtMin)),
        ] {
            let s = Scenario::single_node(cfg, vec![StreamSpec::of(app, n, load)], 0);
            let ct = sweep::mean_over_seeds(&s, &seeds, |st| st.mean_completion_ns());
            row.push_str(&format!("{label}={:.2}x ", cuda / ct));
        }
        println!("{row}");
    }

    println!("\n== supernode pair B (DC+MC) vs single-node GRR-Rain ==");
    let pair_streams = |_apps: ()| {
        vec![
            StreamSpec {
                node: NodeId(0),
                tenant: TenantId(0),
                ..StreamSpec::of(AppKind::DC, n / 2, load)
            },
            StreamSpec {
                node: NodeId(1),
                tenant: TenantId(1),
                ..StreamSpec::of(AppKind::MC, n, load)
            },
        ]
    };
    let base = Scenario::supernode(StackConfig::rain(LbPolicy::Grr), pair_streams(()), 0)
        .with_scope(LbScope::Local);
    let base_ct = sweep::mean_over_seeds(&base, &seeds, |s| s.mean_completion_ns());
    for (label, cfg) in [
        ("GRR-Rain", StackConfig::rain(LbPolicy::Grr)),
        ("GWtMin-Rain", StackConfig::rain(LbPolicy::GWtMin)),
        ("GRR-Str", StackConfig::strings(LbPolicy::Grr)),
        ("GWtMin-Str", StackConfig::strings(LbPolicy::GWtMin)),
        (
            "GWtMinLAS-Str",
            StackConfig::strings(LbPolicy::GWtMin).with_gpu_policy(GpuPolicy::Las),
        ),
        (
            "GWtMinPS-Str",
            StackConfig::strings(LbPolicy::GWtMin).with_gpu_policy(GpuPolicy::Ps),
        ),
        (
            "MBF-Str",
            StackConfig::strings(LbPolicy::GWtMin).with_feedback(LbPolicy::Mbf, 4),
        ),
        (
            "DTF-Str",
            StackConfig::strings(LbPolicy::GWtMin).with_feedback(LbPolicy::Dtf, 4),
        ),
    ] {
        let s = Scenario::supernode(cfg, pair_streams(()), 0);
        let ct = sweep::mean_over_seeds(&s, &seeds, |st| st.mean_completion_ns());
        println!("{label}: {:.2}x", base_ct / ct);
    }
}
