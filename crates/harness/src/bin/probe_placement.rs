//! Placement probe: where do GWtMin vs the feedback policies put a pair's
//! requests? Diagnostic tool for policy calibration.

use strings_core::config::StackConfig;
use strings_core::mapper::LbPolicy;
use strings_harness::experiments::common::{pair_streams, ExpScale};
use strings_harness::scenario::Scenario;
use strings_workloads::pairs::{workload_pair, PairLabel};

fn main() {
    let label = std::env::args()
        .nth(1)
        .and_then(|s| s.chars().next())
        .map(PairLabel)
        .unwrap_or(PairLabel('R'));
    let (a, b) = workload_pair(label);
    let mut scale = ExpScale::full();
    scale.seeds = vec![101];
    println!("pair {label}: {a}(slot0,node0) + {b}(slot1,node1)");
    for (name, cfg) in [
        ("GWtMin", StackConfig::strings(LbPolicy::GWtMin)),
        (
            "RTF",
            StackConfig::strings(LbPolicy::GWtMin).with_feedback(LbPolicy::Rtf, 6),
        ),
        (
            "GUF",
            StackConfig::strings(LbPolicy::GWtMin).with_feedback(LbPolicy::Guf, 6),
        ),
        (
            "DTF",
            StackConfig::strings(LbPolicy::GWtMin).with_feedback(LbPolicy::Dtf, 6),
        ),
        (
            "MBF",
            StackConfig::strings(LbPolicy::GWtMin).with_feedback(LbPolicy::Mbf, 6),
        ),
    ] {
        let mut s = Scenario::supernode(cfg, pair_streams(a, b, &scale), scale.seeds[0]);
        s.seed = scale.seeds[0];
        let stats = s.run();
        let mut line = format!("{name:8}");
        for slot in 0..2 {
            let counts: Vec<u64> = (0..4)
                .map(|g| stats.placements.get(&(slot, g)).copied().unwrap_or(0))
                .collect();
            line.push_str(&format!("  slot{slot}: {counts:?}"));
        }
        line.push_str(&format!(
            "  meanCT={:.2}s",
            stats.mean_completion_ns() / 1e9
        ));
        println!("{line}");
    }
}
