//! # strings-repro
//!
//! Facade crate for the reproduction of *"Scheduling Multi-tenant Cloud
//! Workloads on Accelerator-based Systems"* (Strings, SC'14). It re-exports
//! every workspace crate under one roof so examples, integration tests, and
//! downstream users can depend on a single package.
//!
//! See `README.md` for a tour, `ARCHITECTURE.md` for the crate map and
//! request lifecycle, and `DESIGN.md` for the system inventory.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub use cuda_sim as cuda;
pub use gpu_sim as gpu;
pub use remoting;
pub use sim_core as sim;
pub use strings_core as strings;
pub use strings_harness as harness;
pub use strings_metrics as metrics;
pub use strings_workloads as workloads;
