//! `strings-sim` — run the Strings scheduler on a workload you describe.
//!
//! ```text
//! cargo run --release --bin strings-sim -- \
//!     --mode strings --lb gwtmin --gpu-policy ps \
//!     --app MC:20:1.5 --app DC:10:1.0:1 --nodes 2 --seeds 3
//! ```

use strings_repro::harness::cli::{
    parse_args, parse_explain_args, parse_serve_args, EXPLAIN_USAGE, SERVE_USAGE, USAGE,
};
use strings_repro::harness::experiments::{policy_matrix, ExpScale};
use strings_repro::harness::{explain, sweep};
use strings_repro::metrics::export;
use strings_repro::metrics::forensics;
use strings_repro::metrics::report::{fmt_pct, Table};

/// The `policy-matrix` subcommand: rank every scheduler stack across
/// workload mixes and fault plans (see `experiments::policy_matrix`).
fn policy_matrix_main(args: &[String]) {
    const PM_USAGE: &str = "strings-sim policy-matrix — rank policy stacks \
across workload mixes and fault plans

options:
  --quick     reduced scale (shorter arrival window, one seed)
  --help      print this text
";
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{PM_USAGE}");
        return;
    }
    let quick = args.iter().any(|a| a == "--quick");
    if let Some(bad) = args.iter().find(|a| *a != "--quick") {
        eprintln!("error: unknown option '{bad}'\n\n{PM_USAGE}");
        std::process::exit(2);
    }
    let scale = if quick {
        ExpScale::quick()
    } else {
        ExpScale::full()
    };
    println!("policy matrix: stacks x workload mixes x fault plans\n");
    print!(
        "{}",
        policy_matrix::table(&policy_matrix::run(&scale)).render()
    );
}

/// The `serve` subcommand: open-loop serving with an SLO report per seed.
fn serve_main(args: &[String]) {
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{SERVE_USAGE}");
        return;
    }
    let run = match parse_serve_args(args) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    if let Some(n) = run.threads {
        sweep::set_threads(n);
    }
    println!(
        "serve: {} for {} over {} tenant(s)   stack: {}   topology: {} ({} GPUs, placement {})\n",
        run.spec.arrivals.label(),
        run.spec.duration,
        run.spec.tenants,
        run.spec.stack.label(),
        run.spec.topology.label(),
        run.spec.topology.num_devices(),
        run.spec.placement.label(),
    );
    let runs = sweep::run_serve_seeds(&run.spec, &run.seeds);
    for (seed, stats) in run.seeds.iter().zip(&runs) {
        let report = run.spec.slo(stats);
        println!("seed {seed}:");
        print!("{}", report.render());
        if let Some(alerts) = &stats.alerts {
            print!("{}", alerts.render());
        }
        println!();
    }
    if run.attribution {
        let report = run.spec.attribution(&runs[0]);
        println!("latency attribution (seed {}):", run.seeds[0]);
        print!("{}", report.render(5));
        println!();
    }
    if let Some(path) = &run.metrics_out {
        let registry = runs[0]
            .metrics
            .as_ref()
            .expect("metrics run records a registry");
        let body = if path.ends_with(".jsonl") {
            registry.jsonl()
        } else {
            registry.render_openmetrics()
        };
        std::fs::write(path, body).expect("write metrics");
        println!(
            "metrics written to {path} ({} series, {} snapshots)",
            registry.series_count(),
            registry.snapshot_count()
        );
    }
    if let Some(path) = &run.trace {
        let trace = runs[0].trace.as_ref().expect("traced run records a trace");
        let body = if path.ends_with(".jsonl") {
            strings_repro::metrics::trace_export::jsonl(trace)
        } else {
            strings_repro::metrics::trace_export::chrome_json(trace)
        };
        std::fs::write(path, body).expect("write trace");
        println!("trace written to {path} ({} events)", trace.events.len());
    }
    if let Some(path) = &run.dump {
        // First trigger wins; the final snapshot is the fallback when no
        // trigger fired during the run (dump_final is set with --dump).
        match runs[0].flight_dumps.first() {
            Some(dump) => {
                let body = if path.ends_with(".jsonl") {
                    forensics::dump_jsonl(dump)
                } else {
                    forensics::dump_chrome(dump)
                };
                std::fs::write(path, body).expect("write dump");
                println!(
                    "flight dump written to {path} (reason {}, t {} ns, {} nodes)",
                    dump.reason.label(),
                    dump.at,
                    dump.nodes.len()
                );
            }
            None => println!("no flight dump: recorder disabled (--flight-depth 0)"),
        }
    }
}

/// The `explain` subcommand: rerun a serve spec with attribution forced
/// on and render request REQ's blame chain plus its stage charges.
fn explain_main(args: &[String]) {
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{EXPLAIN_USAGE}");
        return;
    }
    let (req, run) = match parse_explain_args(args) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let seed = run.seeds[0];
    let stats = run.spec.run_with_seed(seed);
    let attr = run.spec.attribution(&stats);
    print!("{}", explain::render(&stats, Some(&attr), req));
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().is_some_and(|a| a == "serve") {
        serve_main(&args[1..]);
        return;
    }
    if args.first().is_some_and(|a| a == "explain") {
        explain_main(&args[1..]);
        return;
    }
    if args.first().is_some_and(|a| a == "policy-matrix") {
        policy_matrix_main(&args[1..]);
        return;
    }
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{USAGE}");
        return;
    }
    // --export DIR writes CSV series (timelines + completions) for plotting.
    let export_dir = args.iter().position(|a| a == "--export").map(|i| {
        let dir = args.get(i + 1).cloned().unwrap_or_else(|| {
            eprintln!("error: --export wants a directory");
            std::process::exit(2);
        });
        args.drain(i..=i + 1);
        dir
    });
    let run = match parse_args(&args) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    println!(
        "stack: {}   topology: {}   seeds: {:?}\n",
        run.scenario.stack.label(),
        run.scenario.topology.label(),
        run.seeds
    );
    // Representative run (first seed) for the detailed breakdown.
    let stats = run.scenario.run();
    let mut t = Table::new(vec!["stream", "app", "requests", "mean completion (s)"]);
    for (slot, spec) in run.scenario.streams.iter().enumerate() {
        t.row(vec![
            slot.to_string(),
            spec.app.to_string(),
            stats.completions.counts()[slot].to_string(),
            format!("{:.3}", stats.completions.mean_ct(slot) / 1e9),
        ]);
    }
    print!("{}", t.render());
    println!();
    let mut d = Table::new(vec![
        "device",
        "compute util",
        "bandwidth util",
        "kernels",
        "copies",
    ]);
    for (gid, tele) in stats.device_telemetry.iter().enumerate() {
        d.row(vec![
            format!("GID{gid}"),
            fmt_pct(tele.mean_compute(0, stats.makespan_ns.max(1))),
            fmt_pct(tele.mean_bandwidth(0, stats.makespan_ns.max(1))),
            tele.kernels_completed.to_string(),
            tele.copies_completed.to_string(),
        ]);
    }
    print!("{}", d.render());
    println!();
    println!(
        "makespan {:.2}s, context switches {}, OOM events {}, events {}",
        stats.makespan_ns as f64 / 1e9,
        stats.context_switches,
        stats.oom_events,
        stats.events
    );
    if run.seeds.len() > 1 {
        let mean = sweep::mean_over_seeds(&run.scenario, &run.seeds, |s| s.mean_completion_ns());
        println!(
            "mean completion over {} seeds: {:.3}s",
            run.seeds.len(),
            mean / 1e9
        );
    }
    if let Some(path) = &run.trace {
        let trace = stats.trace.as_ref().expect("traced run records a trace");
        let body = if path.ends_with(".jsonl") {
            strings_repro::metrics::trace_export::jsonl(trace)
        } else {
            strings_repro::metrics::trace_export::chrome_json(trace)
        };
        std::fs::write(path, body).expect("write trace");
        println!("trace written to {path} ({} events)", trace.events.len());
    }
    if let Some(dir) = export_dir {
        std::fs::create_dir_all(&dir).expect("create export dir");
        for (gid, tele) in stats.device_telemetry.iter().enumerate() {
            let path = format!("{dir}/device{gid}_compute.csv");
            std::fs::write(&path, export::timeline_csv("compute", &tele.compute))
                .expect("write timeline");
        }
        let labels: Vec<String> = run
            .scenario
            .streams
            .iter()
            .map(|s| s.app.to_string())
            .collect();
        let means: Vec<f64> = (0..labels.len())
            .map(|s| stats.completions.mean_ct(s))
            .collect();
        std::fs::write(
            format!("{dir}/completions.csv"),
            export::completions_csv(&labels, &means, &stats.completions.counts()),
        )
        .expect("write completions");
        println!("CSV series exported to {dir}/");
    }
}
