//! Offline stub of `serde_derive`.
//!
//! The container image has no crates.io access, so the real `serde`
//! cannot be fetched. This repo only uses serde's derives as annotations
//! (nothing serializes through serde at runtime — the exporters
//! hand-roll their formats), so the derives expand to nothing.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
