//! Offline stub of `criterion` 0.5.
//!
//! A minimal wall-clock harness: each `bench_function` warms up once,
//! then runs batches until ~`CRITERION_STUB_MS` milliseconds (default
//! 300) of measurement accumulate, and prints mean ns/iter (plus
//! elements/sec when a throughput is set). No statistics, no HTML
//! reports — enough to compare runs of the same bench across commits.

use std::time::{Duration, Instant};

/// Target measurement time per benchmark.
fn target_measure_time() -> Duration {
    let ms = std::env::var("CRITERION_STUB_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(300);
    Duration::from_millis(ms)
}

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Work-per-iteration unit for throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            throughput: None,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&id.into(), None, f);
        self
    }
}

pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, _t: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        run_bench(&full, self.throughput, f);
        self
    }

    pub fn finish(self) {}
}

pub struct Bencher {
    pub(crate) iters: u64,
    pub(crate) elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(id: &str, throughput: Option<Throughput>, mut f: F) {
    // Warm-up single iteration, also sizes the batches.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = b.elapsed.max(Duration::from_nanos(1));
    let target = target_measure_time();
    let batch = (target.as_nanos() / 10 / per_iter.as_nanos()).clamp(1, 1_000_000) as u64;

    let mut total = Duration::ZERO;
    let mut iters = 0u64;
    while total < target {
        let mut b = Bencher {
            iters: batch,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        total += b.elapsed;
        iters += batch;
    }
    let mean_ns = total.as_nanos() as f64 / iters as f64;
    match throughput {
        Some(Throughput::Elements(n)) => {
            let eps = n as f64 / (mean_ns / 1e9);
            println!("bench {id:<50} {mean_ns:>14.1} ns/iter ({iters} iters, {eps:.0} elem/s)");
        }
        Some(Throughput::Bytes(n)) => {
            let bps = n as f64 / (mean_ns / 1e9);
            println!("bench {id:<50} {mean_ns:>14.1} ns/iter ({iters} iters, {bps:.0} B/s)");
        }
        None => {
            println!("bench {id:<50} {mean_ns:>14.1} ns/iter ({iters} iters)");
        }
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench`/`cargo test` pass harness flags (e.g.
            // `--bench`); a stub has no CLI, so they are ignored.
            $($group();)+
        }
    };
}
