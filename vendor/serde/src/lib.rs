//! Offline stub of `serde`.
//!
//! Provides the `Serialize`/`Deserialize` names this workspace imports
//! and re-exports no-op derive macros. No serialization machinery: the
//! repo's exporters write JSON/CSV by hand, and nothing bounds on these
//! traits.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait SerializeMarker {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait DeserializeMarker {}
