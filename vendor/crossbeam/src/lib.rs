//! Offline stub of `crossbeam`.
//!
//! The workspace declares crossbeam but no source currently uses it; the
//! stub provides `scope`, mapped onto `std::thread::scope`, so future
//! callers have the common entry point.

pub mod thread {
    /// Minimal `crossbeam::thread::scope` lookalike over `std::thread::scope`.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn std::any::Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&'scope std::thread::Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(f))
    }
}
