//! Offline stub of `bytes` 1.x.
//!
//! `Bytes` here is an `Arc<[u8]>` slice with a read cursor advanced by
//! the `Buf` getters; `BytesMut` is a growable `Vec<u8>` with `BufMut`
//! putters. Network byte order (big-endian) like the real crate. Only
//! the subset used by the RPC marshaller is provided.

use std::sync::Arc;

/// Cheaply cloneable immutable byte buffer with a read cursor.
#[derive(Debug, Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    pos: usize,
}

impl Bytes {
    pub fn from_static(data: &'static [u8]) -> Bytes {
        Bytes {
            data: Arc::from(data),
            pos: 0,
        }
    }

    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.pos..]
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes {
            data: v.into(),
            pos: 0,
        }
    }
}

/// Growable mutable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> BytesMut {
        BytesMut { data: Vec::new() }
    }

    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

/// Read-side cursor operations (big-endian, panicking on underflow like
/// the real crate).
pub trait Buf {
    fn remaining(&self) -> usize;
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_be_bytes(b)
    }

    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_be_bytes(b)
    }

    fn get_f64(&mut self) -> f64 {
        f64::from_bits(self.get_u64())
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(
            self.remaining() >= dst.len(),
            "buffer underflow: {} < {}",
            self.remaining(),
            dst.len()
        );
        dst.copy_from_slice(&self.data[self.pos..self.pos + dst.len()]);
        self.pos += dst.len();
    }
}

/// Write-side append operations (big-endian).
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut b = BytesMut::with_capacity(32);
        b.put_u8(7);
        b.put_u32(0xDEAD_BEEF);
        b.put_u64(0x0123_4567_89AB_CDEF);
        b.put_f64(1.5);
        let mut r = b.freeze();
        assert_eq!(r.remaining(), 1 + 4 + 8 + 8);
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u32(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64(), 0x0123_4567_89AB_CDEF);
        assert_eq!(r.get_f64(), 1.5);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn clone_keeps_independent_cursors() {
        let mut b = BytesMut::new();
        b.put_u64(42);
        let frozen = b.freeze();
        let mut a = frozen.clone();
        let mut c = frozen.clone();
        assert_eq!(a.get_u64(), 42);
        assert_eq!(c.get_u64(), 42);
    }

    #[test]
    #[should_panic(expected = "buffer underflow")]
    fn underflow_panics() {
        let mut b = Bytes::from_static(&[1, 2]);
        b.get_u32();
    }
}
