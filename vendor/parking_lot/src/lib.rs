//! Offline stub of `parking_lot`.
//!
//! Wraps `std::sync` primitives behind parking_lot's poison-free API
//! (`lock()` returns the guard directly). Slower than the real crate but
//! semantically equivalent for this workspace's coarse-grained use.

use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

#[derive(Debug, Default)]
pub struct Mutex<T>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Poison-free lock: a poisoned mutex just yields the inner guard,
    /// matching parking_lot's behavior of not tracking poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        self.0.try_lock().ok()
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[derive(Debug, Default)]
pub struct RwLock<T>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(l.into_inner(), 6);
    }
}
