//! Offline stub of `rand` 0.8.
//!
//! The container image cannot reach crates.io, so this vendored crate
//! supplies the small API subset the workspace uses: `rngs::StdRng`,
//! `SeedableRng::seed_from_u64`, `Rng::gen`, `Rng::gen_range`.
//!
//! The generator is xoshiro256** seeded through splitmix64 — not the
//! ChaCha12 core of the real `StdRng`, so absolute draw sequences differ
//! from upstream `rand`, but every property the simulator relies on
//! (determinism per seed, uniformity, independence of forks) holds.

pub mod rngs {
    /// Deterministic 256-bit xoshiro256** generator.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) s: [u64; 4],
    }
}

use rngs::StdRng;

/// Seeding interface (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // splitmix64 to fill the state, as the xoshiro authors recommend.
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        StdRng {
            s: [next(), next(), next(), next()],
        }
    }
}

impl StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// Types `Rng::gen` can produce (stand-in for the `Standard` distribution).
pub trait StandardSample {
    fn sample(rng: &mut StdRng) -> Self;
}

impl StandardSample for u64 {
    #[inline]
    fn sample(rng: &mut StdRng) -> u64 {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    #[inline]
    fn sample(rng: &mut StdRng) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl StandardSample for bool {
    #[inline]
    fn sample(rng: &mut StdRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision, like `rand`'s
    /// `Standard` for `f64`.
    #[inline]
    fn sample(rng: &mut StdRng) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges `Rng::gen_range` accepts.
pub trait SampleRange {
    type Output;
    fn sample(self, rng: &mut StdRng) -> Self::Output;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            #[inline]
            fn sample(self, rng: &mut StdRng) -> $t {
                assert!(self.start < self.end, "gen_range over empty range");
                let span = (self.end - self.start) as u64;
                // Multiply-shift bounded draw (Lemire); bias is < 2^-64 per
                // draw for the span sizes a simulation uses.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start + hi as $t
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            #[inline]
            fn sample(self, rng: &mut StdRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range over empty range");
                if start == 0 && end as u128 == <$t>::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                let span = (end - start) as u64 + 1;
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                start + hi as $t
            }
        }
    )*};
}

int_range!(u8, u16, u32, u64, usize, i32, i64);

impl SampleRange for core::ops::Range<f64> {
    type Output = f64;
    #[inline]
    fn sample(self, rng: &mut StdRng) -> f64 {
        assert!(self.start < self.end, "gen_range over empty range");
        let u: f64 = StandardSample::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

/// Subset of the `rand::Rng` extension trait.
pub trait Rng {
    fn gen<T: StandardSample>(&mut self) -> T;
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output;
    fn gen_bool(&mut self, p: f64) -> bool;
}

impl Rng for StdRng {
    #[inline]
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    #[inline]
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        let u: f64 = StandardSample::sample(self);
        u < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let v = r.gen_range(3usize..9);
            assert!((3..9).contains(&v));
            let w = r.gen_range(0usize..=4);
            assert!(w <= 4);
            let f = r.gen_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn mean_is_roughly_half() {
        let mut r = StdRng::seed_from_u64(3);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| r.gen::<f64>()).sum();
        assert!((sum / n as f64 - 0.5).abs() < 0.01);
    }
}
