//! Offline stub of `proptest` 1.x.
//!
//! Generate-only property testing: strategies produce random values from
//! a per-test deterministic RNG and the body runs `cases` times. No
//! shrinking — a failing case reports its seed and case index instead.
//! Supported surface (what this workspace uses): the `proptest!` macro
//! with optional `#![proptest_config(...)]`, integer/float range
//! strategies, tuples up to 4, `collection::vec`, `bool::ANY`,
//! `prop_map`, `prop_oneof!`, `prop_assert!`, `prop_assert_eq!`,
//! `prop_assume!`.

pub mod test_runner {
    /// Why a test case ended early.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs; the case is skipped.
        Reject(String),
        /// `prop_assert!`-style failure; the test fails.
        Fail(String),
    }

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    /// Runner configuration (subset of the real `ProptestConfig`).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(64);
            ProptestConfig { cases }
        }
    }

    /// Deterministic splitmix64 RNG seeded per test (name hash ^
    /// optional `PROPTEST_SEED` override).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn deterministic(test_name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            if let Ok(seed) = std::env::var("PROPTEST_SEED") {
                if let Ok(s) = seed.parse::<u64>() {
                    h ^= s;
                }
            }
            TestRng { state: h }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform in `[0, bound)`.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0);
            ((self.next_u64() as u128 * bound as u128) >> 64) as u64
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A generator of values; `Value` mirrors the real crate's associated
    /// type so `impl Strategy<Value = T>` signatures work unchanged.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// `prop_map` adapter.
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end - self.start) as u64;
                    self.start + rng.below(span) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty strategy range");
                    let span = (end - start) as u64 + 1;
                    start + rng.below(span) as $t
                }
            }
        )*};
    }

    int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty strategy range");
            self.start + rng.next_f64() * (self.end - self.start)
        }
    }

    impl Strategy for core::ops::Range<f32> {
        type Value = f32;

        fn generate(&self, rng: &mut TestRng) -> f32 {
            assert!(self.start < self.end, "empty strategy range");
            self.start + (rng.next_f64() as f32) * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }

    /// Object-safe view of a strategy, for `prop_oneof!`.
    pub trait DynStrategy<V> {
        fn generate_dyn(&self, rng: &mut TestRng) -> V;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// Uniform choice among boxed strategies with a common value type.
    pub struct OneOf<V> {
        choices: Vec<Box<dyn DynStrategy<V>>>,
    }

    impl<V> OneOf<V> {
        pub fn new(choices: Vec<Box<dyn DynStrategy<V>>>) -> Self {
            assert!(!choices.is_empty(), "prop_oneof! needs at least one arm");
            OneOf { choices }
        }
    }

    impl<V> Strategy for OneOf<V> {
        type Value = V;

        fn generate(&self, rng: &mut TestRng) -> V {
            let i = rng.below(self.choices.len() as u64) as usize;
            self.choices[i].generate_dyn(rng)
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// `proptest::collection::vec`: a Vec of `element` values with a
    /// length drawn from `len`.
    pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    pub struct VecStrategy<S> {
        element: S,
        len: core::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.clone().generate(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// `proptest::bool::ANY`: a fair coin.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};
}

/// The property-test harness macro. Each `fn name(arg in strategy, ...)`
/// expands to a `#[test]` that runs the body over `cases` generated
/// inputs; a failure names the case index so it can be replayed with the
/// same (deterministic) per-test seed.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { (<$crate::test_runner::ProptestConfig as ::core::default::Default>::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::deterministic(concat!(
                ::core::module_path!(), "::", stringify!($name)
            ));
            for __case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                let __outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::core::result::Result::Ok(()) })();
                match __outcome {
                    ::core::result::Result::Ok(()) => {}
                    ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!("proptest case {}/{} failed: {}", __case + 1, config.cases, msg)
                    }
                }
            }
        }
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
}

/// Assert inside a property body; failure fails the whole test with the
/// formatted message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {:?} != {:?}", l, r
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {:?} != {:?}: {}", l, r, format!($($fmt)*)
        );
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {:?} == {:?}", l, r
        );
    }};
}

/// Skip the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// Uniform choice among strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $(::std::boxed::Box::new($arm) as ::std::boxed::Box<dyn $crate::strategy::DynStrategy<_>>,)+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 3u32..9, y in -1.5f64..2.5, n in 0usize..=4) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-1.5..2.5).contains(&y));
            prop_assert!(n <= 4);
        }

        #[test]
        fn vec_and_tuple_compose(
            v in crate::collection::vec((0u64..10, crate::bool::ANY), 1..5),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 5);
            for (n, _flag) in v {
                prop_assert!(n < 10);
            }
        }

        #[test]
        fn oneof_and_map(x in prop_oneof![(0u32..5).prop_map(|v| v * 2), (10u32..12).prop_map(|v| v)]) {
            prop_assert!(x < 12 && (x >= 10 || x % 2 == 0), "unexpected value {}", x);
        }

        #[test]
        fn assume_skips(n in 0u32..10) {
            prop_assume!(n % 2 == 0);
            prop_assert!(n % 2 == 0);
        }
    }
}
