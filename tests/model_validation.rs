//! Model validation: cross-checks of the simulator against analytic
//! expectations and the paper's mechanism claims, end to end.

use strings_repro::gpu::spec::GpuModel;
use strings_repro::harness::scenario::{Scenario, StreamSpec};
use strings_repro::remoting::backend::BackendDesign;
use strings_repro::remoting::gpool::{NodeId, NodeSpec};
use strings_repro::remoting::topology::TopologySpec;
use strings_repro::strings::config::StackConfig;
use strings_repro::strings::device_sched::TenantId;
use strings_repro::strings::mapper::LbPolicy;
use strings_repro::workloads::profile::AppKind;

fn stream(app: AppKind, tenant: u32, count: usize, load: f64, threads: usize) -> StreamSpec {
    StreamSpec {
        app,
        node: NodeId(0),
        tenant: TenantId(tenant),
        weight: 1.0,
        count,
        load,
        server_threads: threads,
    }
}

fn on_single_tesla(cfg: StackConfig, streams: Vec<StreamSpec>, seed: u64) -> Scenario {
    let mut s = Scenario::single_node(cfg, streams, seed);
    s.topology = TopologySpec::of_nodes(vec![NodeSpec::new(0, vec![GpuModel::TeslaC2050])]);
    s
}

#[test]
fn uncontended_completion_matches_profile_runtime() {
    // At negligible load on the reference device, completion time must sit
    // within overheads of the profiled standalone runtime.
    for app in [AppKind::DC, AppKind::MC, AppKind::HI, AppKind::GA] {
        let s = on_single_tesla(
            StackConfig::cuda_runtime(),
            vec![stream(app, 0, 2, 0.05, 1)],
            4,
        );
        let stats = s.run();
        let ct = stats.completions.mean_ct(0) / 1e9;
        let solo = app.profile().runtime.as_secs_f64();
        assert!(
            ct > 0.9 * solo && ct < 1.3 * solo,
            "{app}: {ct:.2}s vs solo {solo:.2}s"
        );
    }
}

#[test]
fn queueing_grows_monotonically_with_load() {
    // Mean completion time must be non-decreasing in offered load
    // (sanity of the open-queue model).
    let mut last = 0.0;
    for load in [0.2, 0.6, 1.2, 2.4] {
        let s = on_single_tesla(
            StackConfig::cuda_runtime(),
            vec![stream(AppKind::MM, 0, 10, load, 4)],
            9,
        );
        let ct = s.run().completions.mean_ct(0);
        assert!(
            ct >= last * 0.98,
            "CT decreased with load {load}: {ct} < {last}"
        );
        last = ct;
    }
}

#[test]
fn light_load_has_little_queueing() {
    // At ρ ≈ 0.2 the mean completion time stays near the solo runtime
    // (waiting is rare) — the M/G/1 low-utilization regime.
    let s = on_single_tesla(
        StackConfig::cuda_runtime(),
        vec![stream(AppKind::MM, 0, 12, 0.2, 4)],
        13,
    );
    let ct = s.run().completions.mean_ct(0) / 1e9;
    let solo = AppKind::MM.profile().runtime.as_secs_f64();
    assert!(
        ct < 1.6 * solo,
        "light load queued too much: {ct:.1}s vs {solo:.1}s"
    );
}

#[test]
fn design_two_blocking_sync_delays_other_tenants() {
    // The paper's §III.B complaint about Design II: one application's
    // device synchronize stalls the single master thread, so the *other*
    // tenant finishes later than under Design III (same packing otherwise).
    let streams = || {
        vec![
            stream(AppKind::MM, 0, 3, 8.0, 3),  // sync-heavy long app, dense
            stream(AppKind::GA, 1, 12, 1.0, 3), // quick app arriving throughout
        ]
    };
    let d3 = on_single_tesla(StackConfig::strings(LbPolicy::GMin), streams(), 5).run();
    let mut cfg2 = StackConfig::strings(LbPolicy::GMin);
    cfg2.design = BackendDesign::SingleMaster;
    cfg2.packer.sync_to_stream = false; // the master cannot rewrite syncs
    let d2 = on_single_tesla(cfg2, streams(), 5).run();
    let ga_d3 = d3.completions.mean_ct(1);
    let ga_d2 = d2.completions.mean_ct(1);
    assert!(
        ga_d2 > ga_d3,
        "design II must delay the bystander tenant: {ga_d2} !> {ga_d3}"
    );
}

#[test]
fn remote_access_costs_more_than_local() {
    // The same solo MC request, frontend local to the GPU vs on a GPU-less
    // node that must reach it over the network channel: the remote path
    // pays channel latency + bulk transfer on every call and must be
    // measurably slower on the identical device.
    let mk = |frontend_node: u32| {
        let mut s = Scenario::supernode(
            StackConfig::strings(LbPolicy::GMin),
            vec![StreamSpec {
                node: NodeId(frontend_node),
                ..stream(AppKind::MC, 0, 1, 0.05, 1)
            }],
            8,
        );
        // One GPU total (on node 0); node 1 is a GPU-less frontend host.
        s.topology = TopologySpec::of_nodes(vec![
            NodeSpec::new(0, vec![GpuModel::TeslaC2050]),
            NodeSpec::new(1, vec![]),
        ]);
        s.run()
    };
    let local = mk(0);
    let remote = mk(1);
    assert_eq!(local.completed_requests, 1);
    assert_eq!(remote.completed_requests, 1);
    assert!(
        remote.completions.mean_ct(0) > local.completions.mean_ct(0) * 1.05,
        "remote access must cost more: {:.3}s !> {:.3}s",
        remote.completions.mean_ct(0) / 1e9,
        local.completions.mean_ct(0) / 1e9
    );
}

#[test]
fn mot_pinning_speeds_up_transfer_heavy_apps() {
    // Strings with MOT halves PCIe time for MC (98.9% transfer): solo
    // completion must beat the bare runtime's pageable copies by a wide
    // margin.
    let cuda = on_single_tesla(
        StackConfig::cuda_runtime(),
        vec![stream(AppKind::MC, 0, 2, 0.05, 1)],
        6,
    )
    .run();
    let strings = on_single_tesla(
        StackConfig::strings(LbPolicy::GMin),
        vec![stream(AppKind::MC, 0, 2, 0.05, 1)],
        6,
    )
    .run();
    let speedup = cuda.completions.mean_ct(0) / strings.completions.mean_ct(0);
    assert!(
        speedup > 1.3,
        "MOT should cut MC's solo time substantially: {speedup:.2}x"
    );
}

#[test]
fn faster_devices_finish_compute_bound_work_sooner() {
    // The same DC request on a Quadro 2000 vs a Tesla C2050: the roofline
    // must show the GFLOP/s ratio (~2.1x) for this compute-bound app.
    let mk = |model: GpuModel| {
        let mut s = Scenario::single_node(
            StackConfig::strings(LbPolicy::GMin),
            vec![stream(AppKind::DC, 0, 1, 0.05, 1)],
            3,
        );
        s.topology = TopologySpec::of_nodes(vec![NodeSpec::new(0, vec![model])]);
        s.run().completions.mean_ct(0)
    };
    let quadro = mk(GpuModel::Quadro2000);
    let tesla = mk(GpuModel::TeslaC2050);
    let ratio = quadro / tesla;
    assert!(
        (1.5..3.0).contains(&ratio),
        "DC Quadro/Tesla ratio {ratio:.2} should be near the 2.1x roofline"
    );
}
