//! Documentation staleness gates.
//!
//! SCHEDULING.md is the human-facing catalogue of the scheduler zoo and
//! the `policy_explorer` example is its executable counterpart. Both
//! must track [`strings_repro::strings::zoo::registry`] — these tests
//! fail the moment a policy ships without documentation, or a doc
//! references a policy that no longer exists in code.

use strings_repro::strings::zoo::{registry, PolicyLayer};

fn read(rel: &str) -> String {
    let path = format!("{}/{rel}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"))
}

#[test]
fn scheduling_md_names_every_registry_policy() {
    let doc = read("SCHEDULING.md");
    for info in registry() {
        assert!(
            doc.contains(info.name),
            "SCHEDULING.md does not mention the {} policy '{}' — document it",
            info.layer.label(),
            info.name
        );
    }
}

#[test]
fn scheduling_md_is_linked_from_the_entry_docs() {
    for doc in ["README.md", "ARCHITECTURE.md", "DESIGN.md"] {
        assert!(
            read(doc).contains("SCHEDULING.md"),
            "{doc} must link to SCHEDULING.md"
        );
    }
    // And the experiments guide covers the matrix that exercises the zoo.
    let experiments = read("EXPERIMENTS.md");
    assert!(experiments.contains("SCHEDULING.md"));
    assert!(experiments.contains("policy-matrix"));
}

#[test]
fn policy_explorer_enumerates_the_registry_not_a_hardcoded_list() {
    let src = read("examples/policy_explorer.rs");
    assert!(
        src.contains("registry()"),
        "policy_explorer must enumerate zoo::registry()"
    );
    // No mapper enum variant list: adding a policy to the zoo must not
    // require touching the example. (Single delegating references like
    // `LbPolicy::GWtMin` for the arbiter base are fine; a bracketed
    // [LbPolicy::..., LbPolicy::...] sweep list is not.)
    let mappers = registry()
        .into_iter()
        .filter(|i| i.layer == PolicyLayer::Mapper)
        .count();
    assert!(mappers >= 8, "zoo lost mapper policies? found {mappers}");
    for line in src.lines() {
        let refs = line.matches("LbPolicy::").count();
        assert!(
            refs <= 1,
            "policy_explorer hardcodes a policy list: {}",
            line.trim()
        );
    }
}

#[test]
fn scheduling_md_documents_the_trait_layer_and_slice_model() {
    let doc = read("SCHEDULING.md");
    for needle in [
        "PlacementPolicy",
        "MapperPolicy",
        "SliceCapability",
        "fragmentation",
        "policy_matrix",
        "policy-matrix",
    ] {
        assert!(doc.contains(needle), "SCHEDULING.md lost '{needle}'");
    }
}
