//! Shape tests: the paper's headline qualitative results, asserted at quick
//! experiment scale. These are the claims EXPERIMENTS.md quantifies at full
//! scale; here we pin the *orderings* so a regression cannot silently
//! invert a conclusion.

use strings_repro::harness::experiments::{fig01, fig02, fig09, fig10, fig11, fig15, ExpScale};
use strings_repro::workloads::pairs::workload_pairs;
use strings_repro::workloads::profile::AppKind;

fn quick() -> ExpScale {
    ExpScale::quick()
}

#[test]
fn fig09_strings_beats_rain_beats_nothing() {
    let r = fig09::run(&quick());
    for lb in ["GRR", "GMin", "GWtMin"] {
        let rain = r.average(&format!("{lb}-Rain")).unwrap();
        let strings = r.average(&format!("{lb}-Strings")).unwrap();
        assert!(rain > 1.0, "{lb}-Rain must beat the CUDA runtime: {rain}");
        assert!(
            strings >= rain * 0.95,
            "{lb}: Strings {strings} must not trail Rain {rain}"
        );
    }
}

#[test]
fn fig10_pooling_gains_concentrate_on_low_demand_partners() {
    let all = workload_pairs();
    // Pair C (DC-GA) vs pair X (EV-SN): a light partner leaves more room.
    let r = fig10::run_pairs(&quick(), &[all[2], all[23]]);
    for (label, avg) in &r.averages {
        assert!(*avg > 0.8, "{label} collapsed: {avg}");
    }
}

#[test]
fn fig11_tfs_strings_is_fairest() {
    let all = workload_pairs();
    let r = fig11::run_pairs(&quick(), &[all[0], all[13]]); // A, N
    let (cuda, rain, strings) = r.averages;
    assert!(
        strings + 0.02 >= rain && strings + 0.05 >= cuda,
        "TFS-Strings {strings} must lead (rain {rain}, cuda {cuda})"
    );
}

#[test]
fn fig15_mbf_is_the_best_policy() {
    let all = workload_pairs();
    let r = fig15::run_pairs(&quick(), &[all[1], all[17]]); // B, R
    let dtf = r.average("DTF-Strings").unwrap();
    let mbf = r.average("MBF-Strings").unwrap();
    assert!(mbf > 1.0 && dtf > 1.0);
    assert!(
        mbf >= dtf * 0.9,
        "MBF {mbf} should be competitive with DTF {dtf}"
    );
}

#[test]
fn fig01_heat_classes_match_paper() {
    let r = fig01::run(&quick());
    let get = |k: AppKind| r.rows.iter().find(|row| row.app == k).unwrap();
    // Compute-intensive: DXTC. Memory-intensive: Monte Carlo. Idle-ish: GA.
    assert!(get(AppKind::DC).compute_util > get(AppKind::GA).compute_util);
    assert!(get(AppKind::MC).memory_util > get(AppKind::DC).memory_util);
    assert!(get(AppKind::GA).compute_util < 0.2);
}

#[test]
fn fig02_streams_eliminate_glitches() {
    let r = fig02::run(&quick());
    assert!(r.sequential.context_switches > 0);
    assert_eq!(r.concurrent.context_switches, 0);
    assert!(r.concurrent.glitches < r.sequential.glitches);
}
