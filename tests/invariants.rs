//! Cross-stack invariants, including property-based tests over random
//! workload mixes: every request completes, accounting balances, runs are
//! deterministic, and no configuration deadlocks.

use proptest::prelude::*;
use strings_repro::harness::scenario::{Scenario, StreamSpec};
use strings_repro::remoting::gpool::NodeId;
use strings_repro::strings::config::StackConfig;
use strings_repro::strings::device_sched::{GpuPolicy, TenantId};
use strings_repro::strings::mapper::LbPolicy;
use strings_repro::workloads::profile::AppKind;

fn mk_stream(app: AppKind, node: u32, tenant: u32, count: usize, load: f64) -> StreamSpec {
    StreamSpec {
        app,
        node: NodeId(node),
        tenant: TenantId(tenant),
        weight: 1.0,
        count,
        load,
        server_threads: 4,
    }
}

fn app_from_index(i: usize) -> AppKind {
    AppKind::ALL[i % AppKind::ALL.len()]
}

fn cfg_from_index(i: usize) -> StackConfig {
    match i % 6 {
        0 => StackConfig::cuda_runtime(),
        1 => StackConfig::rain(LbPolicy::GMin),
        2 => StackConfig::strings(LbPolicy::GWtMin),
        3 => StackConfig::strings(LbPolicy::GMin).with_gpu_policy(GpuPolicy::Tfs),
        4 => StackConfig::strings(LbPolicy::GWtMin).with_gpu_policy(GpuPolicy::Ps),
        _ => StackConfig::strings(LbPolicy::GWtMin).with_feedback(LbPolicy::Mbf, 3),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any random mix of apps, loads and stacks completes every request
    /// with balanced accounting.
    #[test]
    fn random_mixes_always_complete(
        apps in proptest::collection::vec((0usize..10, 1usize..5, 0.2f64..2.5), 1..4),
        cfg_idx in 0usize..6,
        seed in 0u64..1000,
    ) {
        let streams: Vec<StreamSpec> = apps
            .iter()
            .enumerate()
            .map(|(slot, (app, count, load))| {
                mk_stream(app_from_index(*app), 0, slot as u32, *count, *load)
            })
            .collect();
        let total: usize = apps.iter().map(|(_, c, _)| *c).sum();
        let stats = Scenario::single_node(cfg_from_index(cfg_idx), streams, seed).run();
        prop_assert_eq!(stats.completed_requests as usize, total);
        prop_assert_eq!(stats.oom_events, 0);
        prop_assert!(stats.makespan_ns > 0);
        // Every slot recorded every one of its requests.
        let counts = stats.completions.counts();
        for (slot, (_, c, _)) in apps.iter().enumerate() {
            prop_assert_eq!(counts[slot], *c as u64);
        }
    }

    /// The same scenario twice yields bit-identical aggregate results.
    #[test]
    fn runs_are_deterministic(
        app in 0usize..10,
        cfg_idx in 0usize..6,
        seed in 0u64..1000,
    ) {
        let mk = || {
            Scenario::single_node(
                cfg_from_index(cfg_idx),
                vec![mk_stream(app_from_index(app), 0, 0, 3, 1.5)],
                seed,
            )
            .run()
        };
        let a = mk();
        let b = mk();
        prop_assert_eq!(a.events, b.events);
        prop_assert_eq!(a.makespan_ns, b.makespan_ns);
        prop_assert_eq!(a.mean_completion_ns().to_bits(), b.mean_completion_ns().to_bits());
        prop_assert_eq!(a.context_switches, b.context_switches);
    }

    /// Completion time is never less than the profiled solo runtime on the
    /// best device (nothing can finish faster than physics allows).
    #[test]
    fn completions_respect_physics(app in 0usize..10, seed in 0u64..100) {
        let kind = app_from_index(app);
        let stats = Scenario::single_node(
            StackConfig::strings(LbPolicy::GWtMin),
            vec![mk_stream(kind, 0, 0, 2, 0.5)],
            seed,
        )
        .run();
        // The host CPU portion alone lower-bounds any completion.
        let cpu_ns = kind.profile().cpu_time().as_ns() as f64;
        prop_assert!(
            stats.completions.mean_ct(0) >= cpu_ns * 0.9,
            "CT {} below CPU floor {}",
            stats.completions.mean_ct(0),
            cpu_ns
        );
    }
}

#[test]
fn supernode_determinism_across_scopes() {
    use strings_repro::harness::scenario::LbScope;
    for scope in [LbScope::Global, LbScope::Local] {
        let mk = || {
            Scenario::supernode(
                StackConfig::strings(LbPolicy::GMin),
                vec![
                    mk_stream(AppKind::MC, 0, 0, 4, 1.5),
                    mk_stream(AppKind::DC, 1, 1, 2, 1.5),
                ],
                99,
            )
            .with_scope(scope)
            .run()
        };
        let a = mk();
        let b = mk();
        assert_eq!(a.events, b.events, "{scope:?}");
        assert_eq!(a.makespan_ns, b.makespan_ns, "{scope:?}");
    }
}
