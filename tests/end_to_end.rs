//! Integration tests spanning the whole stack: workload generation →
//! remoting → scheduler → devices → metrics.

use strings_repro::gpu::spec::GpuModel;
use strings_repro::harness::scenario::{LbScope, Scenario, StreamSpec};
use strings_repro::remoting::gpool::{NodeId, NodeSpec};
use strings_repro::remoting::topology::TopologySpec;
use strings_repro::strings::config::StackConfig;
use strings_repro::strings::device_sched::{GpuPolicy, TenantId};
use strings_repro::strings::mapper::LbPolicy;
use strings_repro::workloads::profile::AppKind;

fn stream(app: AppKind, node: u32, tenant: u32, count: usize, load: f64) -> StreamSpec {
    StreamSpec {
        app,
        node: NodeId(node),
        tenant: TenantId(tenant),
        weight: 1.0,
        count,
        load,
        server_threads: 6,
    }
}

#[test]
fn every_mode_completes_a_mixed_workload() {
    let streams = vec![
        stream(AppKind::MC, 0, 0, 6, 1.5),
        stream(AppKind::GA, 0, 1, 6, 1.5),
    ];
    for cfg in [
        StackConfig::cuda_runtime(),
        StackConfig::rain(LbPolicy::Grr),
        StackConfig::rain(LbPolicy::GMin),
        StackConfig::strings(LbPolicy::GWtMin),
        StackConfig::strings(LbPolicy::GMin).with_gpu_policy(GpuPolicy::Tfs),
        StackConfig::strings(LbPolicy::GWtMin).with_gpu_policy(GpuPolicy::Las),
        StackConfig::strings(LbPolicy::GWtMin).with_gpu_policy(GpuPolicy::Ps),
        StackConfig::strings(LbPolicy::GWtMin).with_feedback(LbPolicy::Mbf, 3),
    ] {
        let label = cfg.label();
        let stats = Scenario::single_node(cfg, streams.clone(), 11).run();
        assert_eq!(stats.completed_requests, 12, "{label}");
        assert_eq!(stats.oom_events, 0, "{label}");
        assert!(stats.makespan_ns > 0, "{label}");
    }
}

#[test]
fn supernode_uses_remote_gpus_under_burst() {
    // A dense burst at NodeA must spill to NodeB under global balancing.
    let streams = vec![stream(AppKind::MC, 0, 0, 16, 4.0)];
    let stats = Scenario::supernode(StackConfig::strings(LbPolicy::GMin), streams, 5).run();
    assert_eq!(stats.completed_requests, 16);
    let remote_work: u64 = stats.device_telemetry[2..]
        .iter()
        .map(|t| t.kernels_completed + t.copies_completed)
        .sum();
    assert!(remote_work > 0, "burst should spill to NodeB GPUs");
}

#[test]
fn local_scope_never_uses_remote_gpus() {
    let streams = vec![stream(AppKind::MC, 0, 0, 10, 3.0)];
    let stats = Scenario::supernode(StackConfig::strings(LbPolicy::GMin), streams, 5)
        .with_scope(LbScope::Local)
        .run();
    let remote_work: u64 = stats.device_telemetry[2..]
        .iter()
        .map(|t| t.kernels_completed + t.copies_completed)
        .sum();
    assert_eq!(remote_work, 0, "local scope must stay on NodeA");
}

#[test]
fn strings_beats_cuda_runtime_under_contention() {
    let streams = vec![stream(AppKind::MC, 0, 0, 12, 2.0)];
    let cuda = Scenario::single_node(StackConfig::cuda_runtime(), streams.clone(), 21).run();
    let strings = Scenario::single_node(StackConfig::strings(LbPolicy::GMin), streams, 21).run();
    assert!(
        strings.mean_completion_ns() < cuda.mean_completion_ns(),
        "strings {:.2e} !< cuda {:.2e}",
        strings.mean_completion_ns(),
        cuda.mean_completion_ns()
    );
    // And it does so without a single context switch.
    assert_eq!(strings.context_switches, 0);
    assert!(cuda.context_switches > 0);
}

#[test]
fn heterogeneous_pool_respects_device_speed() {
    // One compute-bound request, balancer must prefer the Tesla (weight 1.0)
    // over the Quadro on an idle node.
    let streams = vec![stream(AppKind::DC, 0, 0, 1, 0.1)];
    let stats = Scenario::single_node(StackConfig::strings(LbPolicy::GWtMin), streams, 2).run();
    let quadro = &stats.device_telemetry[0];
    let tesla = &stats.device_telemetry[1];
    assert_eq!(quadro.kernels_completed, 0, "Quadro should stay idle");
    assert!(
        tesla.kernels_completed > 0,
        "Tesla should serve the request"
    );
}

#[test]
fn single_gpu_node_serves_everything() {
    let node = NodeSpec::new(0, vec![GpuModel::TeslaC2050]);
    let mut scen = Scenario::single_node(
        StackConfig::strings(LbPolicy::Grr),
        vec![
            stream(AppKind::HI, 0, 0, 5, 1.0),
            stream(AppKind::BS, 0, 1, 5, 1.0),
        ],
        3,
    );
    scen.topology = TopologySpec::of_nodes(vec![node]);
    let stats = scen.run();
    assert_eq!(stats.completed_requests, 10);
    assert_eq!(stats.device_telemetry.len(), 1);
}

#[test]
fn tenant_service_accounting_covers_all_tenants() {
    let streams = vec![
        stream(AppKind::MM, 0, 0, 3, 1.0),
        stream(AppKind::MC, 0, 1, 3, 1.0),
    ];
    let stats = Scenario::single_node(StackConfig::strings(LbPolicy::GMin), streams, 8).run();
    assert_eq!(stats.tenant_service_ns.len(), 2);
    for (tenant, service) in &stats.tenant_service_ns {
        assert!(*service > 0, "{tenant} got no service");
    }
}

#[test]
fn feedback_policies_survive_cold_start() {
    // Feedback policies must behave sanely before any SFT history exists.
    for fb in [LbPolicy::Rtf, LbPolicy::Guf, LbPolicy::Dtf, LbPolicy::Mbf] {
        let cfg = StackConfig::strings(fb);
        let stats = Scenario::single_node(cfg, vec![stream(AppKind::SN, 0, 0, 4, 1.0)], 13).run();
        assert_eq!(stats.completed_requests, 4, "{}", fb.label());
    }
}
