//! Fault-injection integration tests: determinism of the disruption
//! report, paper-predicted blast radii per backend design (Figure 5),
//! bounded retries under partition, and recovery visibility in the trace.

use strings_repro::gpu::spec::GpuModel;
use strings_repro::harness::scenario::{Scenario, StreamSpec};
use strings_repro::harness::RunStats;
use strings_repro::remoting::backend::BackendDesign;
use strings_repro::remoting::gpool::{NodeId, NodeSpec};
use strings_repro::remoting::topology::TopologySpec;
use strings_repro::sim::fault::FaultPlan;
use strings_repro::sim::trace::TraceEvent;
use strings_repro::strings::config::StackConfig;
use strings_repro::strings::device_sched::TenantId;
use strings_repro::strings::mapper::LbPolicy;
use strings_repro::workloads::profile::AppKind;

fn stream(tenant: u32, node: u32, count: usize) -> StreamSpec {
    StreamSpec {
        app: AppKind::MC,
        node: NodeId(node),
        tenant: TenantId(tenant),
        weight: 1.0,
        count,
        load: 3.0,
        server_threads: 6,
    }
}

/// A supernode run under a mixed fault plan: a backend crash, a cross-node
/// partition window, a degraded-link window, and one permanent device loss.
fn faulted_supernode(seed: u64) -> Scenario {
    Scenario::supernode(
        StackConfig::strings(LbPolicy::Grr),
        vec![stream(0, 0, 10), stream(1, 0, 10)],
        seed,
    )
    .with_faults(
        FaultPlan::none()
            .crash_at(5_000_000_000, 0)
            .partition_at(8_000_000_000, 1, 2_000_000_000)
            .degrade_at(12_000_000_000, 1, 8.0, 2_000_000_000)
            .device_failure_at(15_000_000_000, 3),
    )
}

#[test]
fn disruption_report_is_byte_identical_across_runs() {
    let a = faulted_supernode(7).run().disruption_report();
    let b = faulted_supernode(7).run().disruption_report();
    assert_eq!(a, b, "same seed, same plan: identical report");
    assert_eq!(a.render(), b.render(), "rendering is byte-stable");
    let c = faulted_supernode(8).run().disruption_report();
    assert_ne!(
        a.render(),
        c.render(),
        "a different seed perturbs the report"
    );
}

#[test]
fn mixed_fault_plan_exercises_every_recovery_path() {
    let stats = faulted_supernode(7).run();
    let report = stats.disruption_report();
    assert!(stats.rpc_timeouts > 0, "partition must expire deadlines");
    assert!(stats.rpc_retries > 0, "expired deadlines must retransmit");
    assert!(stats.gmap_rebuilds >= 1, "device loss rebuilds the gMap");
    assert!(report.disrupted() > 0, "faults must disturb some requests");
    let totals = report.totals();
    assert!(
        totals.completed + totals.retried + totals.degraded > 0,
        "the pool must keep serving through the faults"
    );
    assert_eq!(
        totals.total(),
        20,
        "every request reaches a terminal bucket"
    );
}

#[test]
fn retries_are_bounded_under_partition() {
    // The partition outlives the whole retry budget, so every blocked call
    // must exhaust its attempts and fail over — never spin forever.
    let scen = Scenario::supernode(
        StackConfig::strings(LbPolicy::Grr),
        vec![stream(0, 0, 8)],
        11,
    )
    .with_faults(FaultPlan::none().partition_at(8_000_000_000, 1, 5_000_000_000));
    let policy = scen.stack.retry;
    assert!(policy.is_enabled());
    let stats = scen.run(); // terminating at all proves the loop is bounded
    assert!(stats.rpc_timeouts > 0, "cross-node calls must time out");
    assert!(
        stats.rpc_timeouts <= stats.failovers * policy.max_attempts as u64 + stats.rpc_retries,
        "timeouts beyond the per-call budget: {} timeouts, {} retries, {} failovers",
        stats.rpc_timeouts,
        stats.rpc_retries,
        stats.failovers,
    );
    assert!(stats.failovers > 0, "exhausted calls must fail over");
}

#[test]
fn recovery_is_visible_in_the_trace() {
    let mut scen = faulted_supernode(7);
    scen.trace = true;
    let mut stats = scen.run();
    let trace = stats.trace.take().expect("tracing enabled");
    let instants: Vec<&str> = trace
        .events
        .iter()
        .filter_map(|e| match e {
            TraceEvent::Instant { name, .. } => Some(*name),
            _ => None,
        })
        .collect();
    let spans: Vec<&str> = trace
        .events
        .iter()
        .filter_map(|e| match e {
            TraceEvent::SpanBegin { name, .. } => Some(*name),
            _ => None,
        })
        .collect();
    assert!(
        instants.contains(&"fault_injected"),
        "every injection lands in the trace"
    );
    assert!(instants.contains(&"rpc_timeout"), "timeouts are visible");
    assert!(instants.contains(&"rpc_retry"), "retries are visible");
    assert!(instants.contains(&"gmap_rebuild"), "rebuilds are visible");
    assert!(spans.contains(&"failover"), "failovers are spans");
    assert!(spans.contains(&"partition"), "partition windows are spans");
    // The exported Chrome JSON carries the recovery events too.
    let json = strings_repro::metrics::trace_export::chrome_json(&trace);
    assert!(json.contains("failover") && json.contains("fault_injected"));
}

fn blast_radius(design_cfg: StackConfig) -> RunStats {
    // Dense arrivals (load 4, 8 server threads) keep the lone GPU's
    // backend busy, so the 10 s crash always finds applications bound.
    let busy = StreamSpec {
        load: 4.0,
        server_threads: 8,
        ..stream(0, 0, 10)
    };
    let mut scen = Scenario::single_node(design_cfg, vec![busy], 17);
    scen.topology = TopologySpec::of_nodes(vec![NodeSpec::new(0, vec![GpuModel::TeslaC2050])]);
    scen.faults = FaultPlan::none().crash_at(10_000_000_000, 0);
    scen.run()
}

#[test]
fn blast_radii_follow_figure_5() {
    let d1 = blast_radius(StackConfig::rain(LbPolicy::GMin));
    let d2 = {
        let mut c = StackConfig::strings(LbPolicy::GMin);
        c.design = BackendDesign::SingleMaster;
        c.packer.sync_to_stream = false;
        blast_radius(c)
    };
    let d3 = blast_radius(StackConfig::strings(LbPolicy::GMin));
    assert_eq!(d1.failed_requests, 1, "design I: one private process dies");
    assert_eq!(d3.failed_requests, 1, "design III: one thread's app dies");
    assert!(
        d2.failed_requests > d3.failed_requests,
        "design II master death ({}) must dwarf design III ({})",
        d2.failed_requests,
        d3.failed_requests
    );
    let d3_totals = d3.disruption_report().totals();
    assert!(
        d3_totals.retried > 0 && d3_totals.downtime_ns > 0,
        "design III siblings replay after the respawn"
    );
    assert_eq!(
        d2.disruption_report().totals().retried,
        0,
        "design II leaves no survivors on the device to replay"
    );
}
