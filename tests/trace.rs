//! Validity invariants of a recorded trace: a reduced Figure-2-style
//! scenario (two MC streams contending on one GPU under Strings/TFS) is
//! run with tracing on, and the resulting span structure must be
//! well-formed and consistent with the run's aggregate statistics.

use strings_repro::gpu::spec::GpuModel;
use strings_repro::harness::scenario::{Scenario, StreamSpec};
use strings_repro::harness::RunStats;
use strings_repro::metrics::trace_export;
use strings_repro::remoting::gpool::{NodeId, NodeSpec};
use strings_repro::remoting::topology::TopologySpec;
use strings_repro::sim::trace::{Trace, TraceEvent};
use strings_repro::strings::config::StackConfig;
use strings_repro::strings::device_sched::{GpuPolicy, TenantId};
use strings_repro::strings::mapper::LbPolicy;
use strings_repro::workloads::profile::AppKind;

fn traced_scenario() -> Scenario {
    let mk = |tenant: u32| StreamSpec {
        app: AppKind::MC,
        node: NodeId(0),
        tenant: TenantId(tenant),
        weight: 1.0,
        count: 4,
        load: 3.0,
        server_threads: 4,
    };
    let mut s = Scenario::single_node(
        StackConfig::strings(LbPolicy::GMin).with_gpu_policy(GpuPolicy::Tfs),
        vec![mk(0), mk(1)],
        101,
    )
    .with_trace();
    s.topology = TopologySpec::of_nodes(vec![NodeSpec::new(0, vec![GpuModel::TeslaC2050])]);
    s
}

fn run_traced() -> (RunStats, Trace) {
    let scen = traced_scenario();
    let mut stats = scen.run();
    let trace = stats.trace.take().expect("tracing was enabled");
    (stats, trace)
}

#[test]
fn traced_run_has_wellformed_spans() {
    let (stats, trace) = run_traced();
    assert_eq!(stats.completed_requests, 8);
    assert!(!trace.tracks.is_empty());
    assert!(!trace.events.is_empty());

    // Every span that opened also closed (the run drained to quiescence).
    for t in 0..trace.tracks.len() {
        let id = strings_repro::sim::trace::TrackId(t as u32);
        assert_eq!(
            trace.unclosed_spans(id),
            0,
            "unclosed spans on {:?}",
            trace.desc(id)
        );
    }

    // No event is stamped outside the run's virtual-time window.
    assert!(trace.end_time() <= stats.makespan_ns);

    // Sync tracks serialize: intervals on copy lanes and the driver track
    // must not overlap (the engine does one thing at a time).
    let sync_tracks = trace.find_tracks(|d| d.thread.starts_with("copy") || d.thread == "driver");
    for id in sync_tracks {
        let mut iv = trace.span_intervals(id);
        iv.sort_unstable();
        for w in iv.windows(2) {
            assert!(
                w[0].1 <= w[1].0,
                "overlapping sync spans {:?} and {:?} on {:?}",
                w[0],
                w[1],
                trace.desc(id)
            );
        }
    }
}

#[test]
fn traced_run_attributes_every_request() {
    let (stats, trace) = run_traced();
    let planned = traced_scenario().plan().len();
    let begins = trace
        .events
        .iter()
        .filter(|e| {
            matches!(
                e,
                TraceEvent::SpanBegin {
                    name: "request",
                    ..
                }
            )
        })
        .count();
    let ends = trace
        .events
        .iter()
        .filter(|e| {
            matches!(
                e,
                TraceEvent::SpanEnd {
                    name: "request",
                    ..
                }
            )
        })
        .count();
    assert_eq!(begins, planned, "one request span per planned request");
    assert_eq!(ends, planned);
    assert_eq!(stats.completed_requests as usize, planned);

    // Each request binds to a device exactly once → one placement instant
    // per request, and the TFS dispatcher published epoch decisions.
    let placements = trace
        .events
        .iter()
        .filter(|e| {
            matches!(
                e,
                TraceEvent::Instant {
                    name: "placement",
                    ..
                }
            )
        })
        .count();
    assert_eq!(placements, planned);
    let epochs = trace
        .events
        .iter()
        .filter(|e| matches!(e, TraceEvent::Instant { name: "epoch", .. }))
        .count();
    assert!(epochs > 0, "TFS must record epoch decisions");
    assert_eq!(stats.clamped_events, 0, "no event scheduled into the past");
}

#[test]
fn trace_glitch_query_agrees_with_telemetry() {
    let (stats, trace) = run_traced();
    let end = stats.makespan_ns.max(1);
    let tele = &stats.device_telemetry[0];
    let engine_tracks = trace.find_tracks(|d| {
        d.process == "GID0" && (d.thread == "compute" || d.thread.starts_with("copy"))
    });
    assert!(!engine_tracks.is_empty());
    for min_gap in [100_000u64, 1_000_000, 10_000_000] {
        let from_trace =
            strings_repro::sim::trace::combined_idle_gaps(&trace, &engine_tracks, 0, end, min_gap);
        let from_tele = strings_repro::sim::telemetry::combined_idle_gaps(
            &[&tele.compute, &tele.copy],
            0,
            end,
            min_gap,
        );
        assert_eq!(
            from_trace, from_tele,
            "glitch count diverged at min_gap={min_gap}"
        );
    }
}

#[test]
fn traced_runs_are_deterministic_and_exportable() {
    let (_, a) = run_traced();
    let (_, b) = run_traced();
    let ja = trace_export::jsonl(&a);
    let jb = trace_export::jsonl(&b);
    assert_eq!(ja, jb, "trace must be a pure function of the seed");
    let chrome = trace_export::chrome_json(&a);
    assert!(chrome.starts_with("{\"traceEvents\":["));
    assert!(chrome.contains("\"process_name\""));
    assert!(chrome.contains("GID0"));
    assert!(chrome.contains("\"thread_name\""));
}
